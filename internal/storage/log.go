package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Log is the durable backend: an append-only log of records split
// across fixed-size segment files in one directory.
//
// On-disk format (all integers big-endian):
//
//	segment file  NNNNNNNN.vseg:  magic ‖ record*
//	magic:   8 bytes "VCHLOG01"
//	record:  [4-byte payload length][4-byte CRC32-C of payload][payload]
//
// Append writes the framed record and fsyncs the segment before
// returning (unless Options.NoSync), so a record is durable exactly
// when its commit succeeds. Open rebuilds the in-RAM offset index by
// scanning every segment; the first torn or corrupt record ends the
// scan, the containing segment is truncated at the last valid record,
// and any later segments are discarded — a crash mid-append can only
// ever cost the record being written.
type Log struct {
	mu     sync.RWMutex
	dir    string
	dirF   *os.File
	opts   Options
	segs   []*segment
	recs   []recordRef
	report Report
	cold   ColdStats
	reads  atomic.Int64
	closed bool
}

// Options tune a Log. The zero value is a production configuration.
type Options struct {
	// SegmentBytes caps a segment file's size; a record that would
	// overflow the active segment starts a new one. Default 64 MiB.
	// Small values (tests) force frequent rollover.
	SegmentBytes int64
	// MaxRecordBytes bounds a single record. Oversized appends are
	// rejected, and a scanned length field beyond the bound is treated
	// as corruption. Default 1 GiB.
	MaxRecordBytes int
	// NoSync disables the per-append fsync. Throughput benchmarks
	// only: a crash may lose acknowledged records.
	NoSync bool
	// Hooks inject faults into the log's file I/O (fsync failures,
	// torn frame writes). Nil — the production configuration — injects
	// nothing. Tests and chaos drills (internal/fault) use them to
	// exercise the recovery paths deterministically.
	Hooks *Hooks
	// Cold, when non-nil, offloads each segment to this tier as it
	// seals (fills and rolls over): the local file is removed and the
	// segment's framing metadata is recorded in a manifest so reopen
	// indexes it without a fetch. Reading a cold record fetches the
	// segment back, verifies every record CRC against the manifest,
	// and re-materializes it locally. A log whose manifest lists cold
	// segments refuses to open without a tier configured.
	Cold ColdTier
}

// Hooks intercept the log's file I/O for fault injection. Each hook is
// consulted on the append path only; recovery and truncation always
// run against the real file so an injected fault never cascades into
// destroying valid records.
type Hooks struct {
	// Sync, when non-nil, is consulted in place of each append-path
	// fsync (record appends and new-segment creation): returning an
	// error surfaces it as the fsync failure and skips the real sync;
	// returning nil performs the real fsync.
	Sync func() error
	// Write, when non-nil, is consulted before each record frame
	// write. Returning (n, err) with err != nil tears the write: only
	// frame[:n] reaches the file and Append fails with err — exactly
	// what a crash mid-write leaves behind. Returning (_, nil) lets
	// the write through untouched.
	Write func(frame []byte) (int, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 1 << 30
	}
	return o
}

// Report describes what recovery found while opening a log.
type Report struct {
	// Records is the number of valid records indexed.
	Records int
	// Truncated reports whether recovery discarded a torn or corrupt
	// tail.
	Truncated bool
	// DroppedBytes counts bytes discarded by recovery (including whole
	// later segments).
	DroppedBytes int64
	// DroppedSegments counts later segment files removed by recovery.
	DroppedSegments int
}

var logMagic = [8]byte{'V', 'C', 'H', 'L', 'O', 'G', '0', '1'}

const recHeaderLen = 8 // 4-byte length + 4-byte CRC

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segment is one on-disk segment file, kept open read-write — or, when
// cold, an offloaded segment known only by its manifest entry (f is
// nil until a read promotes it back).
type segment struct {
	id   int
	path string
	f    *os.File
	size int64
	cold bool
}

// recordRef locates record i: the segment (index into Log.segs), the
// payload offset, the payload length, and the payload's CRC32-C —
// kept in RAM so every read (hot or cold) is verified against the
// checksum computed when the record was written.
type recordRef struct {
	seg int
	off int64
	n   int
	sum uint32
}

func segName(id int) string { return fmt.Sprintf("%08d.vseg", id) }

// Open opens (or creates) the segmented log in dir, scanning every
// segment to rebuild the offset index and recovering from a torn tail
// by truncating to the last valid record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating log dir: %w", err)
	}
	dirF, err := os.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log dir: %w", err)
	}
	// Exactly one process may hold a log open: a second appender would
	// overwrite acknowledged records. The flock dies with the process,
	// so a crashed owner never wedges the store.
	if err := lockDir(dirF); err != nil {
		dirF.Close()
		return nil, err
	}
	l := &Log{dir: dir, dirF: dirF, opts: opts}

	names, err := listSegments(dir)
	if err != nil {
		dirF.Close()
		return nil, err
	}
	man, err := readManifest(dir)
	if err != nil {
		dirF.Close()
		return nil, err
	}
	if len(man.Segments) > 0 && opts.Cold == nil {
		dirF.Close()
		return nil, fmt.Errorf("storage: log %s has %d cold segments but no cold tier configured", dir, len(man.Segments))
	}
	coldByName := make(map[string]coldSeg, len(man.Segments))
	for _, cs := range man.Segments {
		coldByName[cs.Name] = cs
	}
	local := make(map[string]bool, len(names))
	for _, name := range names {
		local[name] = true
	}

	// Every segment id from 0 must be accounted for, locally or in the
	// manifest; a local file beyond a hole means the directory is not
	// ours to repair.
	total := 0
	for {
		name := segName(total)
		if !local[name] {
			if _, ok := coldByName[name]; !ok {
				break
			}
		}
		total++
	}
	for _, name := range names {
		var id int
		fmt.Sscanf(name, "%08d.vseg", &id)
		if id >= total {
			dirF.Close()
			return nil, fmt.Errorf("storage: unexpected segment %q (want %s)", name, segName(total))
		}
	}
	manifestDirty := false
	for id := 0; id < total; id++ {
		name := segName(id)
		if local[name] {
			// A segment both local and in the manifest is a crash
			// between the manifest write and the local removal of a
			// seal: the local copy wins.
			if _, dup := coldByName[name]; dup {
				delete(coldByName, name)
				manifestDirty = true
			}
			ok, err := l.scanSegment(name)
			if err != nil {
				l.Close()
				return nil, err
			}
			if !ok {
				// Recovery point: everything after the invalid record is
				// unreachable (chain records are sequential), so later
				// segments are dropped too — local files removed,
				// manifest entries forgotten.
				for later := id + 1; later < total; later++ {
					ln := segName(later)
					if cs, ok := coldByName[ln]; ok {
						delete(coldByName, ln)
						l.report.DroppedBytes += cs.Size
						l.report.DroppedSegments++
						manifestDirty = true
						continue
					}
					p := filepath.Join(dir, ln)
					if st, err := os.Stat(p); err == nil {
						l.report.DroppedBytes += st.Size()
					}
					if err := os.Remove(p); err != nil {
						l.Close()
						return nil, fmt.Errorf("storage: dropping segment after corruption: %w", err)
					}
					l.report.DroppedSegments++
				}
				if err := l.syncDir(); err != nil {
					l.Close()
					return nil, err
				}
				break
			}
			continue
		}
		cs := coldByName[name]
		delete(coldByName, name)
		seg := &segment{id: len(l.segs), path: filepath.Join(dir, name), size: cs.Size, cold: true}
		for _, r := range cs.Recs {
			l.recs = append(l.recs, recordRef{seg: seg.id, off: r.Off, n: r.N, sum: r.Sum})
		}
		l.segs = append(l.segs, seg)
	}
	if len(coldByName) > 0 {
		// Manifest entries past the contiguous run (or orphaned by
		// recovery above) are dropped.
		manifestDirty = true
	}
	if manifestDirty {
		if err := l.writeManifestLocked(); err != nil {
			l.Close()
			return nil, err
		}
	}
	l.report.Records = len(l.recs)
	return l, nil
}

// listSegments returns the local segment file names in id order,
// rejecting foreign files. Contiguity is checked against the cold
// manifest by the caller: an id missing locally may be offloaded.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading log dir: %w", err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".vseg" {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(e.Name(), "%08d.vseg", &id); err != nil || segName(id) != e.Name() {
			return nil, fmt.Errorf("storage: unexpected file %q in log dir", e.Name())
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment opens one segment, validates its records, and appends
// them to the index. It returns false when the segment ended at a torn
// or corrupt record (after truncating it to the last valid one); the
// caller must then discard all later segments.
func (l *Log) scanSegment(name string) (bool, error) {
	path := filepath.Join(l.dir, name)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("storage: opening segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return false, err
	}
	size := st.Size()

	var magic [8]byte
	_, err = f.ReadAt(magic[:], 0)
	switch {
	case err == nil && magic == logMagic:
		// Healthy segment: fall through to the record scan.
	case err == nil:
		// A full, wrong magic is a foreign file, not a torn write:
		// refuse to touch the directory.
		f.Close()
		return false, fmt.Errorf("storage: %s is not a vchain log segment", name)
	case errors.Is(err, io.EOF):
		// Short file: torn segment creation, nothing in it can be
		// valid.
		return false, l.truncateSegment(f, path, st, 0, size)
	default:
		// A real I/O error is not crash damage — failing the open must
		// never destroy records a retry could still read.
		f.Close()
		return false, fmt.Errorf("storage: reading %s magic: %w", name, err)
	}

	seg := &segment{id: len(l.segs), path: path, f: f, size: size}
	off := int64(len(logMagic))
	var hdr [recHeaderLen]byte
	for off < size {
		if size-off < recHeaderLen {
			return false, l.truncateSegment(f, path, st, off, size)
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			f.Close()
			return false, fmt.Errorf("storage: reading %s: %w", name, err)
		}
		n := int(binary.BigEndian.Uint32(hdr[:4]))
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n > l.opts.MaxRecordBytes || int64(n) > size-off-recHeaderLen {
			return false, l.truncateSegment(f, path, st, off, size)
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+recHeaderLen); err != nil {
			f.Close()
			return false, fmt.Errorf("storage: reading %s: %w", name, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return false, l.truncateSegment(f, path, st, off, size)
		}
		l.recs = append(l.recs, recordRef{seg: seg.id, off: off + recHeaderLen, n: n, sum: sum})
		off += recHeaderLen + int64(n)
	}
	l.segs = append(l.segs, seg)
	return true, nil
}

// truncateSegment cuts f back to the last valid record at off. A
// segment left without any record (off ≤ magic) is removed entirely;
// otherwise it joins the index truncated. Either way the result is
// fsynced before recovery continues.
func (l *Log) truncateSegment(f *os.File, path string, st os.FileInfo, off, size int64) error {
	l.report.Truncated = true
	l.report.DroppedBytes += size - off
	if off <= int64(len(logMagic)) {
		f.Close()
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("storage: removing torn segment: %w", err)
		}
		l.report.DroppedBytes += off
		l.report.DroppedSegments++
		return l.syncDir()
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return fmt.Errorf("storage: truncating torn segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.segs = append(l.segs, &segment{id: len(l.segs), path: path, f: f, size: off})
	return nil
}

// syncSeg fsyncs a segment file on the append path, consulting the
// Sync hook first: a hook error surfaces as the fsync failure.
func (l *Log) syncSeg(f *os.File) error {
	if h := l.opts.Hooks; h != nil && h.Sync != nil {
		if err := h.Sync(); err != nil {
			return err
		}
	}
	return f.Sync()
}

func (l *Log) syncDir() error {
	if err := l.dirF.Sync(); err != nil {
		return fmt.Errorf("storage: syncing log dir: %w", err)
	}
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Report returns what recovery found when the log was opened.
func (l *Log) Report() Report {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.report
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.segs)
}

// Len implements Backend.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.recs)
}

// Append implements Backend: it frames data, writes it to the active
// segment (rolling to a new one at the size cap), and fsyncs before
// returning.
func (l *Log) Append(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("storage: log closed")
	}
	if len(data) > l.opts.MaxRecordBytes {
		return fmt.Errorf("storage: record of %d bytes exceeds the %d-byte cap", len(data), l.opts.MaxRecordBytes)
	}
	recLen := int64(recHeaderLen + len(data))
	seg := l.activeSegment()
	if seg == nil || seg.cold || (seg.size+recLen > l.opts.SegmentBytes && seg.size > int64(len(logMagic))) {
		prev := seg
		var err error
		if seg, err = l.newSegment(); err != nil {
			return err
		}
		// The rolled-away segment is now immutable: offload it if a
		// cold tier is configured.
		if prev != nil {
			l.sealLocked(prev)
		}
	}
	sum := crc32.Checksum(data, crcTable)
	frame := make([]byte, recHeaderLen+len(data))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(data)))
	binary.BigEndian.PutUint32(frame[4:8], sum)
	copy(frame[recHeaderLen:], data)
	if h := l.opts.Hooks; h != nil && h.Write != nil {
		if n, werr := h.Write(frame); werr != nil {
			// Injected torn write: land only the prefix, exactly as a
			// crash mid-write would, then fail the append. The record is
			// not indexed; reopen recovers via truncate-to-last-valid.
			if n < 0 {
				n = 0
			} else if n > len(frame) {
				n = len(frame)
			}
			if n > 0 {
				if _, err := seg.f.WriteAt(frame[:n], seg.size); err != nil {
					return fmt.Errorf("storage: appending record: %w", err)
				}
			}
			return fmt.Errorf("storage: appending record: %w", werr)
		}
	}
	if _, err := seg.f.WriteAt(frame, seg.size); err != nil {
		return fmt.Errorf("storage: appending record: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.syncSeg(seg.f); err != nil {
			return fmt.Errorf("storage: syncing segment: %w", err)
		}
	}
	l.recs = append(l.recs, recordRef{seg: seg.id, off: seg.size + recHeaderLen, n: len(data), sum: sum})
	seg.size += recLen
	return nil
}

func (l *Log) activeSegment() *segment {
	if len(l.segs) == 0 {
		return nil
	}
	return l.segs[len(l.segs)-1]
}

// newSegment creates, syncs, and registers the next segment file.
func (l *Log) newSegment() (*segment, error) {
	id := len(l.segs)
	path := filepath.Join(l.dir, segName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: creating segment: %w", err)
	}
	if _, err := f.WriteAt(logMagic[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: writing segment magic: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.syncSeg(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := l.syncDir(); err != nil {
			f.Close()
			return nil, err
		}
	}
	seg := &segment{id: id, path: path, f: f, size: int64(len(logMagic))}
	l.segs = append(l.segs, seg)
	return seg, nil
}

// Read implements Backend. Every read verifies the payload against the
// CRC32-C recorded at write time, so bit-rot surfaces as a typed
// ErrCorruptRecord at page-in instead of a garbled decode downstream.
// A record in a cold segment first promotes the whole segment back
// from the tier (verified against the manifest) and then reads it
// locally.
func (l *Log) Read(i int) ([]byte, error) {
	for {
		l.mu.RLock()
		if l.closed {
			l.mu.RUnlock()
			return nil, errors.New("storage: log closed")
		}
		if i < 0 || i >= len(l.recs) {
			n := len(l.recs)
			l.mu.RUnlock()
			return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, n)
		}
		ref := l.recs[i]
		seg := l.segs[ref.seg]
		if seg.cold {
			id := ref.seg
			l.mu.RUnlock()
			l.mu.Lock()
			err := l.promoteLocked(id)
			l.mu.Unlock()
			if err != nil {
				return nil, err
			}
			continue
		}
		out := make([]byte, ref.n)
		_, err := seg.f.ReadAt(out, ref.off)
		l.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("storage: reading record %d: %w", i, err)
		}
		if crc32.Checksum(out, crcTable) != ref.sum {
			return nil, fmt.Errorf("%w: record %d fails its CRC32-C", ErrCorruptRecord, i)
		}
		l.reads.Add(1)
		return out, nil
	}
}

// Truncate implements Backend: it discards records n.., removing
// now-empty segments and cutting the segment containing the boundary.
func (l *Log) Truncate(n int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("storage: log closed")
	}
	if n < 0 || n > len(l.recs) {
		return fmt.Errorf("%w: truncate to %d of %d", ErrOutOfRange, n, len(l.recs))
	}
	if n == len(l.recs) {
		return nil
	}
	boundary := l.recs[n]
	keepSegs := boundary.seg
	cut := boundary.off - recHeaderLen
	coldDropped := false
	if cut > int64(len(logMagic)) {
		// The boundary segment keeps its earlier records; if it was
		// offloaded it must come back local first.
		keepSegs++
		seg := l.segs[boundary.seg]
		if seg.cold {
			if err := l.promoteLocked(boundary.seg); err != nil {
				return err
			}
		}
		if err := seg.f.Truncate(cut); err != nil {
			return fmt.Errorf("storage: truncating segment: %w", err)
		}
		if err := seg.f.Sync(); err != nil {
			return err
		}
		seg.size = cut
	}
	for _, seg := range l.segs[keepSegs:] {
		if seg.cold {
			// Offloaded segment: no local file; its manifest entry is
			// dropped below (the tier's blob is left orphaned — a
			// re-seal of the same id overwrites it).
			coldDropped = true
			continue
		}
		seg.f.Close()
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("storage: removing truncated segment: %w", err)
		}
	}
	l.segs = l.segs[:keepSegs]
	l.recs = l.recs[:n]
	if coldDropped {
		if err := l.writeManifestLocked(); err != nil {
			return err
		}
	}
	return l.syncDir()
}

// Close implements Backend.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, seg := range l.segs {
		if seg.f == nil {
			continue
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := l.dirF.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
