package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func fillLog(t *testing.T, l *Log, n int) [][]byte {
	t.Helper()
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = bytes.Repeat([]byte{byte(i + 1)}, 20+i*7)
		if err := l.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return recs
}

func checkRecords(t *testing.T, l *Log, want [][]byte) {
	t.Helper()
	if l.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", l.Len(), len(want))
	}
	for i, w := range want {
		got, err := l.Read(i)
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("record %d = %x, want %x", i, got, w)
		}
	}
	if _, err := l.Read(len(want)); err == nil {
		t.Fatal("Read past the end succeeded")
	}
}

func TestLogRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 128})
	recs := fillLog(t, l, 10)
	if l.Segments() < 2 {
		t.Fatalf("expected the 128-byte cap to roll segments, got %d", l.Segments())
	}
	checkRecords(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := openTestLog(t, dir, Options{SegmentBytes: 128})
	checkRecords(t, re, recs)
	if rep := re.Report(); rep.Truncated || rep.Records != len(recs) {
		t.Fatalf("clean reopen reported recovery: %+v", rep)
	}
	// Appends continue at the right height after reopen.
	extra := []byte("post-reopen")
	if err := re.Append(extra); err != nil {
		t.Fatal(err)
	}
	checkRecords(t, re, append(recs, extra))
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".vseg" {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

func TestLogRecoversFromTruncatedTailRecord(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	recs := fillLog(t, l, 6)
	l.Close()

	// A crash mid-write leaves a torn final record: cut the last
	// segment a few bytes short.
	path := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	re := openTestLog(t, dir, Options{})
	checkRecords(t, re, recs[:5])
	rep := re.Report()
	if !rep.Truncated || rep.Records != 5 {
		t.Fatalf("report %+v, want truncated with 5 records", rep)
	}
	// The log must be appendable again at the recovered height.
	if err := re.Append([]byte("replacement")); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 6 {
		t.Fatalf("post-recovery append: Len() = %d, want 6", re.Len())
	}
}

func TestLogRecoversFromFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	recs := fillLog(t, l, 6)
	ref3 := l.recs[3]
	l.Close()

	// Flip one payload byte of record 3: its CRC no longer matches, so
	// recovery must cut back to records 0..2 (later records are
	// unreachable without the corrupt one — chain records are
	// sequential).
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], ref3.off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], ref3.off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTestLog(t, dir, Options{})
	checkRecords(t, re, recs[:3])
	if rep := re.Report(); !rep.Truncated {
		t.Fatalf("report %+v, want truncated", rep)
	}
}

func TestLogRecoversFromPartialFinalSegment(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record gets its own file.
	l := openTestLog(t, dir, Options{SegmentBytes: 16})
	recs := fillLog(t, l, 4)
	if l.Segments() != 4 {
		t.Fatalf("got %d segments, want 4", l.Segments())
	}
	l.Close()

	// A crash during segment creation leaves a final segment with only
	// part of the magic written.
	torn := filepath.Join(dir, segName(4))
	if err := os.WriteFile(torn, logMagic[:3], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTestLog(t, dir, Options{SegmentBytes: 16})
	checkRecords(t, re, recs)
	rep := re.Report()
	if !rep.Truncated || rep.DroppedSegments != 1 {
		t.Fatalf("report %+v, want 1 dropped segment", rep)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn segment still present: %v", err)
	}
	// A corrupt middle segment additionally drops every later one.
	if err := os.Truncate(filepath.Join(dir, segName(1)), 10); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2 := openTestLog(t, dir, Options{SegmentBytes: 16})
	checkRecords(t, re2, recs[:1])
	if rep := re2.Report(); rep.DroppedSegments != 3 {
		t.Fatalf("report %+v, want 3 dropped segments", rep)
	}
}

func TestLogRejectsForeignSegment(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte("definitely not a log segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("foreign segment accepted")
	}
	// Gapped segment numbering is foreign content too.
	dir2 := t.TempDir()
	l := openTestLog(t, dir2, Options{})
	fillLog(t, l, 1)
	l.Close()
	if err := os.Rename(filepath.Join(dir2, segName(0)), filepath.Join(dir2, segName(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("gapped segment numbering accepted")
	}
}

func TestLogTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 96})
	recs := fillLog(t, l, 8)
	if err := l.Truncate(9); err == nil {
		t.Fatal("truncate beyond Len accepted")
	}
	if err := l.Truncate(3); err != nil {
		t.Fatal(err)
	}
	checkRecords(t, l, recs[:3])
	// Appends resume at the truncation point, and the result survives
	// reopen.
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	re := openTestLog(t, dir, Options{SegmentBytes: 96})
	checkRecords(t, re, append(recs[:3:3], []byte("after")))

	if err := re.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if re.Len() != 0 || re.Segments() != 0 {
		t.Fatalf("truncate to zero left %d records, %d segments", re.Len(), re.Segments())
	}
	if err := re.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	checkRecords(t, re, [][]byte{[]byte("fresh")})
}

func TestMemoryBackend(t *testing.T) {
	m := NewMemory()
	var want [][]byte
	for i := 0; i < 5; i++ {
		rec := []byte(fmt.Sprintf("rec-%d", i))
		if err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if m.Len() != 5 {
		t.Fatalf("Len() = %d", m.Len())
	}
	for i, w := range want {
		got, err := m.Read(i)
		if err != nil || !bytes.Equal(got, w) {
			t.Fatalf("Read(%d) = %x, %v", i, got, err)
		}
	}
	if _, err := m.Read(5); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := m.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("post-truncate Len() = %d", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestLogRejectsOversizedRecord(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{MaxRecordBytes: 8})
	if err := l.Append(make([]byte, 9)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := l.Append(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestLogSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	fillLog(t, l, 2)
	// A second opener of a live log must be refused: two appenders
	// would overwrite each other's records.
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second concurrent Open succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTestLog(t, dir, Options{})
	if re.Len() != 2 {
		t.Fatalf("reopen after close: Len() = %d", re.Len())
	}
}

func TestNullBackend(t *testing.T) {
	n := NewNull()
	if err := n.Append([]byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 0 {
		t.Fatalf("Null retained %d records", n.Len())
	}
	if _, err := n.Read(0); err == nil {
		t.Fatal("Null read succeeded")
	}
	if err := n.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if err := n.Truncate(1); err == nil {
		t.Fatal("Null truncate past zero succeeded")
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
