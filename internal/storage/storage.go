// Package storage provides the full node's pluggable block store: an
// ordered, append-only sequence of opaque records, one per committed
// block. The core layer serializes each (Block, BlockADS) pair into one
// record at commit time, so a durable backend persists the chain — and
// the expensive-to-rebuild ADS bodies — incrementally as blocks are
// mined, instead of via whole-chain snapshots.
//
// Two implementations exist:
//
//   - Memory keeps records in RAM (the historical behavior: nothing
//     survives a restart);
//   - Log is an append-only segmented log on disk with per-record
//     CRC framing, fsync-on-commit durability, and crash recovery that
//     truncates to the last valid record.
//
// Backends store bytes, not blocks: they know nothing about chain
// validation, which stays in the core commit path.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOutOfRange is returned by Read for an index not in [0, Len()).
var ErrOutOfRange = errors.New("storage: record index out of range")

// ErrCorruptRecord is returned by Read when a record's payload fails
// its CRC32-C, and by cold-segment promotion when a fetched segment
// does not match what was sealed. It means bit-rot or tampering, not
// a transient IO failure: retrying the same read cannot succeed.
var ErrCorruptRecord = errors.New("storage: corrupt record")

// Backend is an ordered, append-only store of opaque records. Record i
// holds the chain entry at height i. Implementations must be safe for
// concurrent use, though the core commit path already serializes
// writes.
type Backend interface {
	// Len returns the number of committed records.
	Len() int
	// Append durably commits data as record number Len(). For durable
	// backends the record must survive a process crash once Append
	// returns.
	Append(data []byte) error
	// Read returns record i. The returned slice must not be mutated by
	// the caller.
	Read(i int) ([]byte, error)
	// Truncate discards records n.. so that Len() == n afterwards. It
	// is the rollback half of an atomic multi-record import: a failed
	// import truncates back to its start. Truncating beyond Len() is an
	// error.
	Truncate(n int) error
	// Close releases resources. A closed backend rejects further use.
	Close() error
}

// Ephemeral marks backends that retain nothing. The commit pipeline
// skips record serialization entirely for them — an ephemeral node
// pays zero persistence overhead.
type Ephemeral interface {
	Backend
	// EphemeralStore is a marker; it does nothing.
	EphemeralStore()
}

// Null is the no-persistence backend: appends are acknowledged and
// discarded. It backs plain in-memory nodes (core.NewFullNode), which
// keep their own decoded chain state and gain nothing from a second,
// serialized copy.
type Null struct{}

// NewNull returns the no-persistence backend.
func NewNull() Null { return Null{} }

// EphemeralStore implements Ephemeral.
func (Null) EphemeralStore() {}

// Len implements Backend: a Null retains nothing.
func (Null) Len() int { return 0 }

// Append implements Backend by discarding the record.
func (Null) Append([]byte) error { return nil }

// Read implements Backend; nothing is ever retained.
func (Null) Read(i int) ([]byte, error) {
	return nil, fmt.Errorf("%w: %d of 0", ErrOutOfRange, i)
}

// Truncate implements Backend.
func (Null) Truncate(n int) error {
	if n != 0 {
		return fmt.Errorf("%w: truncate to %d of 0", ErrOutOfRange, n)
	}
	return nil
}

// Close implements Backend.
func (Null) Close() error { return nil }

// Memory is the in-RAM backend: it retains every record for the
// process lifetime, so replay, import rollback, and export all work
// uniformly against it — useful for tests and staging flows. A node
// that only needs the legacy "nothing survives" behavior uses Null
// instead and skips record serialization altogether.
type Memory struct {
	mu     sync.RWMutex
	recs   [][]byte
	closed bool
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Len implements Backend.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.recs)
}

// Append implements Backend.
func (m *Memory) Append(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("storage: backend closed")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.recs = append(m.recs, cp)
	return nil
}

// Read implements Backend.
func (m *Memory) Read(i int) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if i < 0 || i >= len(m.recs) {
		return nil, fmt.Errorf("%w: %d of %d", ErrOutOfRange, i, len(m.recs))
	}
	return m.recs[i], nil
}

// Truncate implements Backend.
func (m *Memory) Truncate(n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 || n > len(m.recs) {
		return fmt.Errorf("%w: truncate to %d of %d", ErrOutOfRange, n, len(m.recs))
	}
	m.recs = m.recs[:n]
	return nil
}

// Close implements Backend.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
