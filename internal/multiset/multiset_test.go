package multiset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndCounts(t *testing.T) {
	m := New("a", "b", "a")
	if m.Count("a") != 2 || m.Count("b") != 1 || m.Count("c") != 0 {
		t.Fatalf("unexpected counts: %v", m)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	if m.Cardinality() != 3 {
		t.Errorf("Cardinality = %d, want 3", m.Cardinality())
	}
	if !m.Contains("a") || m.Contains("z") {
		t.Error("Contains wrong")
	}
}

func TestAddIgnoresNonPositive(t *testing.T) {
	m := New()
	m.Add("x", 0)
	m.Add("x", -3)
	if m.Contains("x") {
		t.Error("non-positive Add should be a no-op")
	}
	m.Add("x", 2)
	if m.Count("x") != 2 {
		t.Error("Add(2) failed")
	}
}

func TestUnionVsSum(t *testing.T) {
	a := New("a", "a", "b")
	b := New("a", "c")
	u := Union(a, b)
	s := Sum(a, b)
	// Union takes max multiplicity: a×2, b, c.
	if u.Count("a") != 2 || u.Count("b") != 1 || u.Count("c") != 1 {
		t.Fatalf("union wrong: %v", u)
	}
	// Sum adds: a×3.
	if s.Count("a") != 3 || s.Count("b") != 1 || s.Count("c") != 1 {
		t.Fatalf("sum wrong: %v", s)
	}
	// Inputs untouched.
	if a.Count("a") != 2 || b.Count("a") != 1 {
		t.Error("inputs mutated")
	}
}

func TestSumAll(t *testing.T) {
	s := SumAll(New("x"), New("x", "y"), New())
	if s.Count("x") != 2 || s.Count("y") != 1 {
		t.Fatalf("SumAll wrong: %v", s)
	}
	if SumAll().Len() != 0 {
		t.Error("SumAll() should be empty")
	}
}

func TestIntersectAndDisjoint(t *testing.T) {
	a := New("a", "a", "b")
	b := New("a", "b", "b")
	i := Intersect(a, b)
	if i.Count("a") != 1 || i.Count("b") != 1 {
		t.Fatalf("intersect wrong: %v", i)
	}
	if Disjoint(a, b) {
		t.Error("a,b share elements")
	}
	if !Disjoint(New("x"), New("y")) {
		t.Error("x,y are disjoint")
	}
	if !Disjoint(New(), New("y")) {
		t.Error("∅ disjoint with everything")
	}
}

func TestIntersectsSet(t *testing.T) {
	m := New("sedan", "benz")
	if !m.IntersectsSet([]string{"benz", "bmw"}) {
		t.Error("should intersect")
	}
	if m.IntersectsSet([]string{"audi", "bmw"}) {
		t.Error("should not intersect")
	}
	if m.IntersectsSet(nil) {
		t.Error("empty clause never intersects")
	}
}

func TestJaccard(t *testing.T) {
	a := New("a", "b", "c")
	b := New("b", "c", "d")
	// |∩|=2, |∪|=4 → 0.5
	if got := Jaccard(a, b); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
	if Jaccard(New(), New()) != 0 {
		t.Error("Jaccard(∅,∅) should be 0")
	}
	if Jaccard(a, a) != 1 {
		t.Error("Jaccard(a,a) should be 1")
	}
	if Jaccard(a, New("z")) != 0 {
		t.Error("disjoint Jaccard should be 0")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New("a", "a", "b")
	c := a.Clone()
	if !Equal(a, c) {
		t.Error("clone not equal")
	}
	c.Add("a", 1)
	if Equal(a, c) {
		t.Error("multiplicity change should break equality")
	}
	if Equal(New("a"), New("b")) {
		t.Error("different elements equal")
	}
	if Equal(New("a"), New("a", "b")) {
		t.Error("different sizes equal")
	}
}

func TestElementsSortedAndExpand(t *testing.T) {
	m := New("zeta", "alpha", "mid", "alpha")
	e := m.Elements()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Elements not sorted: %v", e)
		}
	}
	x := m.Expand()
	if len(x) != 4 || x[0] != "alpha" || x[1] != "alpha" {
		t.Fatalf("Expand wrong: %v", x)
	}
}

func TestString(t *testing.T) {
	m := New("b", "a", "a")
	if got := m.String(); got != "{a×2, b}" {
		t.Errorf("String = %q", got)
	}
	if New().String() != "{}" {
		t.Error("empty String wrong")
	}
}

func randMS(rng *rand.Rand) Multiset {
	n := rng.Intn(8)
	m := Multiset{}
	letters := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		m.Add(letters[rng.Intn(len(letters))], 1+rng.Intn(3))
	}
	return m
}

func TestAlgebraicLawsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	err := quick.Check(func(seed int64) bool {
		a, b, c := randMS(rng), randMS(rng), randMS(rng)
		// Commutativity.
		if !Equal(Union(a, b), Union(b, a)) || !Equal(Sum(a, b), Sum(b, a)) {
			return false
		}
		// Associativity of Sum.
		if !Equal(Sum(Sum(a, b), c), Sum(a, Sum(b, c))) {
			return false
		}
		// Union idempotent.
		if !Equal(Union(a, a), a) {
			return false
		}
		// Disjoint consistent with Intersect.
		if Disjoint(a, b) != (Intersect(a, b).Len() == 0) {
			return false
		}
		// Sum cardinality additive.
		return Sum(a, b).Cardinality() == a.Cardinality()+b.Cardinality()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
