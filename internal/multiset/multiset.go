// Package multiset implements counted multisets of string elements.
//
// vChain attaches a set-valued attribute W to every object, merges them
// up the intra-block Merkle index with multiset *union* (Def. 6.1) and
// across blocks in the skip list with multiset *sum* (§6.2), and feeds
// them into the cryptographic accumulators. This package supplies those
// operations plus the Jaccard similarity used by the index-building
// clustering heuristic (Alg. 2).
package multiset

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strings"
)

// Multiset maps an element to its (positive) multiplicity.
type Multiset map[string]int

// New builds a multiset from elements; duplicates accumulate.
func New(elems ...string) Multiset {
	m := make(Multiset, len(elems))
	for _, e := range elems {
		m[e]++
	}
	return m
}

// FromSet builds a multiset with multiplicity 1 for each distinct key.
func FromSet(elems map[string]struct{}) Multiset {
	m := make(Multiset, len(elems))
	for e := range elems {
		m[e] = 1
	}
	return m
}

// Clone returns a deep copy.
func (m Multiset) Clone() Multiset {
	out := make(Multiset, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Add inserts n occurrences of e. Non-positive n is a no-op.
func (m Multiset) Add(e string, n int) {
	if n <= 0 {
		return
	}
	m[e] += n
}

// Count returns the multiplicity of e (0 when absent).
func (m Multiset) Count(e string) int { return m[e] }

// Contains reports whether e occurs at least once.
func (m Multiset) Contains(e string) bool { return m[e] > 0 }

// Len returns the number of distinct elements.
func (m Multiset) Len() int { return len(m) }

// Cardinality returns the total number of occurrences (Σ multiplicity).
func (m Multiset) Cardinality() int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Union returns the multiset union (per-element max multiplicity).
func Union(a, b Multiset) Multiset {
	out := a.Clone()
	for k, v := range b {
		if v > out[k] {
			out[k] = v
		}
	}
	return out
}

// Sum returns the multiset sum (per-element added multiplicity). This
// is the aggregation the accumulator Sum primitive mirrors in the
// exponent.
func Sum(a, b Multiset) Multiset {
	out := a.Clone()
	for k, v := range b {
		out[k] += v
	}
	return out
}

// SumAll folds Sum over any number of multisets.
func SumAll(ms ...Multiset) Multiset {
	out := Multiset{}
	for _, m := range ms {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// Intersect returns the multiset intersection (per-element min).
func Intersect(a, b Multiset) Multiset {
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	out := Multiset{}
	for k, v := range small {
		if w := large[k]; w > 0 {
			if w < v {
				out[k] = w
			} else {
				out[k] = v
			}
		}
	}
	return out
}

// Disjoint reports whether a and b share no element.
func Disjoint(a, b Multiset) bool {
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	for k := range small {
		if large[k] > 0 {
			return false
		}
	}
	return true
}

// IntersectsSet reports whether any element of the plain set `set`
// occurs in m. Query clauses are plain sets, so this is the hot path of
// Boolean matching.
func (m Multiset) IntersectsSet(set []string) bool {
	for _, e := range set {
		if m[e] > 0 {
			return true
		}
	}
	return false
}

// Jaccard returns |a ∩ b| / |a ∪ b| over distinct elements, the
// similarity measure driving the intra-block clustering (Alg. 2).
// Two empty multisets have similarity 0.
func Jaccard(a, b Multiset) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	for k := range small {
		if large[k] > 0 {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Equal reports whether a and b have identical elements and
// multiplicities.
func Equal(a, b Multiset) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Elements returns the distinct elements in sorted order (deterministic
// iteration for hashing and serialization).
func (m Multiset) Elements() []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Expand returns every occurrence (element repeated by multiplicity),
// sorted. This is the list fed to the accumulator Setup.
func (m Multiset) Expand() []string {
	out := make([]string, 0, m.Cardinality())
	for _, k := range m.Elements() {
		for i := 0; i < m[k]; i++ {
			out = append(out, k)
		}
	}
	return out
}

// Digest returns a collision-resistant 32-byte digest of the multiset:
// SHA-256 over the length-delimited (element, multiplicity) pairs in
// sorted element order. Equal multisets share a digest regardless of
// construction order; the proof engine uses it as a memoization key.
func (m Multiset) Digest() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, k := range m.Elements() {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(k)))
		h.Write(buf[:])
		h.Write([]byte(k))
		binary.LittleEndian.PutUint64(buf[:], uint64(m[k]))
		h.Write(buf[:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// String renders the multiset deterministically, e.g. {a, b×2}.
func (m Multiset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range m.Elements() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k)
		if m[k] > 1 {
			sb.WriteString("×")
			sb.WriteString(itoa(m[k]))
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
