// Package proofs is the shared concurrent disjointness-proof engine.
//
// Disjointness proofs (accumulator.ProveDisjoint) dominate SP CPU in
// vChain — the paper's SP runs 24 hyper-threads on them (§8) — and the
// same (multiset, clause) pair is proved again and again across
// repeated time-window queries, across the subscriptions sharing a
// block, and across the blocks of a lazy span. The Engine centralizes
// that cost behind one reusable component:
//
//   - a bounded worker pool executing deferred proof tasks scheduled
//     with assign callbacks (Run), so VO construction can stay
//     single-threaded while proof computation fans out;
//   - an LRU memoization cache keyed by (multiset digest, clause key)
//     with single-flight deduplication, so concurrent and repeated
//     requests for the same proof compute it once;
//   - same-clause aggregation (Aggregator) for aggregating
//     accumulators, powering online batch verification (§6.3);
//   - a Stats snapshot (proofs computed, cache hits/misses,
//     aggregation groups) for CLIs and benchmarks.
//
// One Engine is shared by the time-window SP paths, the subscription
// engine, and the service layer of a deployment; it is safe for
// concurrent use.
package proofs

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/multiset"
)

// DefaultCacheSize is the proof-cache capacity when Options.CacheSize
// is zero. A cached proof is two curve points (~a hundred bytes), so
// the default costs well under a megabyte.
const DefaultCacheSize = 4096

// Options configure an Engine.
type Options struct {
	// Workers is the default worker count for deferred runs (Run.Wait
	// with workers <= 0) — the paper's SP uses 24. Values <= 1 mean
	// proofs execute inline on the waiting goroutine.
	Workers int
	// CacheSize bounds the LRU proof cache: 0 means DefaultCacheSize,
	// negative disables caching entirely.
	CacheSize int
	// Limiter, when set, replaces the engine's private concurrency
	// bound: every engine sharing one Limiter splits its budget instead
	// of multiplying it. A sharded SP hands the same Limiter to all of
	// its per-shard engines so N shards in one process still compute at
	// most the configured number of proofs at once. Nil keeps the
	// historical behavior: a private bound of max(Workers, GOMAXPROCS).
	Limiter *Limiter
}

// Limiter is a concurrency budget for proof computation, shareable
// across engines. It bounds ProveDisjoint calls in flight across every
// engine created with it.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter creates a budget of n concurrent proof computations
// (minimum 1).
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Cap returns the budget.
func (l *Limiter) Cap() int { return cap(l.sem) }

func (l *Limiter) acquire() { l.sem <- struct{}{} }
func (l *Limiter) release() { <-l.sem }

// acquireCtx waits for a budget slot or the context's end, whichever
// comes first — a canceled query's queued proof tasks give up their
// wait instead of pinning the budget queue.
func (l *Limiter) acquireCtx(ctx context.Context) error {
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	// Proofs counts disjointness proofs actually computed (cache
	// misses that reached the accumulator, successful or not).
	Proofs uint64
	// CacheHits counts requests answered from the cache or joined onto
	// an in-flight computation of the same proof.
	CacheHits uint64
	// CacheMisses counts requests that had to compute.
	CacheMisses uint64
	// Evictions counts cache entries dropped by the LRU bound.
	Evictions uint64
	// AggGroups counts same-clause aggregation groups finalized.
	AggGroups uint64
	// Errors counts failed proof computations (e.g. non-disjoint or
	// over-capacity multisets).
	Errors uint64
}

// HitRate returns CacheHits / (CacheHits + CacheMisses), or 0 when no
// requests have been made.
func (s Stats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Add returns the counter-wise sum of s and o. A sharded deployment
// runs one engine per shard; summing their snapshots yields the
// process-wide view a CLI or dashboard should report.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Proofs:      s.Proofs + o.Proofs,
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
		Evictions:   s.Evictions + o.Evictions,
		AggGroups:   s.AggGroups + o.AggGroups,
		Errors:      s.Errors + o.Errors,
	}
}

// Engine computes, caches, and aggregates disjointness proofs on
// behalf of every proof consumer of one deployment.
type Engine struct {
	acc       accumulator.Accumulator
	workers   int
	cacheSize int

	// lim bounds proof computations in flight across all concurrent
	// runs using this engine — and, when Options.Limiter was supplied,
	// across every engine sharing that limiter — so stacking runs (or
	// stacking shard engines) cannot oversubscribe the host. A private
	// limiter has capacity max(Workers, GOMAXPROCS), keeping per-run
	// worker counts above the engine default able to parallelize up to
	// the hardware.
	lim *Limiter

	mu       sync.Mutex
	lru      *list.List // of *cacheEntry, most recent first
	items    map[cacheKey]*list.Element
	inflight map[cacheKey]*flight
	stats    Stats
}

// cacheKey identifies one memoized proof: the digest of the first
// multiset plus the caller's clause key. The clause key must uniquely
// determine the clause's multiset (core.Clause.Key does).
type cacheKey struct {
	w      [32]byte
	clause string
}

type cacheEntry struct {
	key cacheKey
	pf  accumulator.Proof
}

// flight is an in-progress computation other requesters can join.
type flight struct {
	done chan struct{}
	pf   accumulator.Proof
	err  error
}

// New creates an engine over the given accumulator.
func New(acc accumulator.Accumulator, opts Options) *Engine {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	lim := opts.Limiter
	if lim == nil {
		maxConc := workers
		if n := runtime.GOMAXPROCS(0); n > maxConc {
			maxConc = n
		}
		lim = NewLimiter(maxConc)
	}
	return &Engine{
		acc:       acc,
		workers:   workers,
		cacheSize: size,
		lim:       lim,
		lru:       list.New(),
		items:     map[cacheKey]*list.Element{},
		inflight:  map[cacheKey]*flight{},
	}
}

// Acc returns the engine's accumulator.
func (e *Engine) Acc() accumulator.Accumulator { return e.acc }

// Workers returns the default worker count.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Prove returns a proof that w and the clause's multiset are disjoint,
// serving it from the cache when an equal pair was proved before and
// joining an in-flight computation when one is already underway.
// clauseKey must uniquely determine clauseW.
func (e *Engine) Prove(w multiset.Multiset, clauseKey string, clauseW multiset.Multiset) (accumulator.Proof, error) {
	return e.ProveCtx(context.Background(), w, clauseKey, clauseW)
}

// ProveCtx is Prove under a deadline: a done context fails the request
// before any pairing work starts, while waiting for the concurrency
// budget, or while joined onto another caller's in-flight computation.
// A computation already running is never interrupted (the pairing code
// has no cancellation points) — its result still lands in the cache
// for the next caller, so cancellation costs at most one proof of
// wasted work per worker.
func (e *Engine) ProveCtx(ctx context.Context, w multiset.Multiset, clauseKey string, clauseW multiset.Multiset) (accumulator.Proof, error) {
	if err := ctx.Err(); err != nil {
		return accumulator.Proof{}, err
	}
	if e.cacheSize < 0 {
		e.mu.Lock()
		e.stats.CacheMisses++
		e.mu.Unlock()
		return e.compute(ctx, w, clauseW)
	}
	key := cacheKey{w: w.Digest(), clause: clauseKey}

	e.mu.Lock()
	if el, ok := e.items[key]; ok {
		e.lru.MoveToFront(el)
		e.stats.CacheHits++
		pf := el.Value.(*cacheEntry).pf
		e.mu.Unlock()
		return pf, nil
	}
	if f, ok := e.inflight[key]; ok {
		e.stats.CacheHits++
		e.mu.Unlock()
		select {
		case <-f.done:
			return f.pf, f.err
		case <-ctx.Done():
			return accumulator.Proof{}, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	e.inflight[key] = f
	e.stats.CacheMisses++
	e.mu.Unlock()

	f.pf, f.err = e.compute(ctx, w, clauseW)

	e.mu.Lock()
	delete(e.inflight, key)
	if f.err == nil {
		e.items[key] = e.lru.PushFront(&cacheEntry{key: key, pf: f.pf})
		for e.lru.Len() > e.cacheSize {
			oldest := e.lru.Back()
			delete(e.items, oldest.Value.(*cacheEntry).key)
			e.lru.Remove(oldest)
			e.stats.Evictions++
		}
	}
	e.mu.Unlock()
	close(f.done)
	return f.pf, f.err
}

// compute runs the accumulator proof under the concurrency bound and
// updates the computation counters. A context expiring while queued
// for the budget aborts without touching the pairing counters.
func (e *Engine) compute(ctx context.Context, w, clauseW multiset.Multiset) (accumulator.Proof, error) {
	if err := e.lim.acquireCtx(ctx); err != nil {
		return accumulator.Proof{}, err
	}
	pf, err := e.acc.ProveDisjoint(w, clauseW)
	e.lim.release()
	e.mu.Lock()
	e.stats.Proofs++
	if err != nil {
		e.stats.Errors++
	}
	e.mu.Unlock()
	return pf, err
}

// task is one deferred proof with its assign callback.
type task struct {
	w         multiset.Multiset
	clauseKey string
	clauseW   multiset.Multiset
	assign    func(accumulator.Proof)
}

// Run collects deferred proof tasks scheduled during VO construction
// and executes them on the worker pool at Wait. Runs are not safe for
// concurrent Add; build the run single-threaded, then Wait.
type Run struct {
	e     *Engine
	tasks []task
}

// NewRun starts an empty deferred-task run.
func (e *Engine) NewRun() *Run { return &Run{e: e} }

// Add schedules one proof; assign receives the proof when Wait
// executes the run. Assign callbacks run on worker goroutines but
// never concurrently with each other, so plain closures over VO
// fields are safe.
func (r *Run) Add(w multiset.Multiset, clauseKey string, clauseW multiset.Multiset, assign func(accumulator.Proof)) {
	r.tasks = append(r.tasks, task{w: w, clauseKey: clauseKey, clauseW: clauseW, assign: assign})
}

// Len returns the number of scheduled tasks.
func (r *Run) Len() int { return len(r.tasks) }

// Wait executes all scheduled tasks on up to `workers` goroutines
// (workers <= 0 means the engine default) and invokes each task's
// assign callback with its proof. The first error wins; remaining
// successful assignments still happen. The run is empty afterwards
// and may be reused.
func (r *Run) Wait(workers int) error {
	return r.WaitCtx(context.Background(), workers)
}

// WaitCtx is Wait under a deadline: once the context ends, remaining
// tasks fail fast with the context error instead of computing — a
// canceled query drains its deferred proof backlog in one cheap check
// per task rather than pinning the worker budget until the backlog is
// exhausted. Tasks already inside the pairing code run to completion
// (and still populate the cache).
func (r *Run) WaitCtx(ctx context.Context, workers int) error {
	if len(r.tasks) == 0 {
		return nil
	}
	tasks := r.tasks
	r.tasks = nil
	if workers <= 0 {
		workers = r.e.workers
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		var firstErr error
		for i := range tasks {
			t := &tasks[i]
			pf, err := r.e.ProveCtx(ctx, t.w, t.clauseKey, t.clauseW)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			t.assign(pf)
		}
		return firstErr
	}

	type result struct {
		idx int
		pf  accumulator.Proof
		err error
	}
	jobs := make(chan int)
	results := make(chan result, len(tasks))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				t := &tasks[idx]
				pf, err := r.e.ProveCtx(ctx, t.w, t.clauseKey, t.clauseW)
				results <- result{idx: idx, pf: pf, err: err}
			}
		}()
	}
	go func() {
		for i := range tasks {
			jobs <- i
		}
		close(jobs)
	}()
	var firstErr error
	for range tasks {
		res := <-results
		if res.err != nil {
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		// Serialized on the waiting goroutine: assigns never race.
		tasks[res.idx].assign(res.pf)
	}
	return firstErr
}

// Aggregator groups same-clause mismatches across one query and proves
// each group once over the multiset sum (§6.3 online batch
// verification). Group indexes are assigned in insertion order.
// Aggregators are not safe for concurrent use.
type Aggregator struct {
	e      *Engine
	groups map[string]*aggGroup
	order  []string
}

type aggGroup struct {
	key     string
	w       multiset.Multiset
	clauseW multiset.Multiset
	index   int
	members int
}

// NewAggregator starts an empty aggregation.
func (e *Engine) NewAggregator() *Aggregator {
	return &Aggregator{e: e, groups: map[string]*aggGroup{}}
}

// Add registers a mismatching multiset under its clause and returns
// the clause's group index (stable insertion order).
func (a *Aggregator) Add(clauseKey string, w, clauseW multiset.Multiset) int {
	g, ok := a.groups[clauseKey]
	if !ok {
		g = &aggGroup{key: clauseKey, w: multiset.Multiset{}, clauseW: clauseW, index: len(a.order)}
		a.groups[clauseKey] = g
		a.order = append(a.order, clauseKey)
	}
	g.w = multiset.Sum(g.w, w)
	g.members++
	return g.index
}

// Len returns the number of groups.
func (a *Aggregator) Len() int { return len(a.order) }

// Finalize computes one aggregated proof per group, in group-index
// order. With a run, proofs are deferred to the worker pool (assign
// fires during Run.Wait); otherwise they are computed inline and the
// first failure aborts.
func (a *Aggregator) Finalize(run *Run, assign func(index int, pf accumulator.Proof)) error {
	a.e.mu.Lock()
	a.e.stats.AggGroups += uint64(len(a.order))
	a.e.mu.Unlock()
	for _, k := range a.order {
		g := a.groups[k]
		if run != nil {
			idx := g.index
			run.Add(g.w, g.key, g.clauseW, func(pf accumulator.Proof) { assign(idx, pf) })
			continue
		}
		pf, err := a.e.Prove(g.w, g.key, g.clauseW)
		if err != nil {
			return fmt.Errorf("proofs: aggregated proof for group %d: %w", g.index, err)
		}
		assign(g.index, pf)
	}
	return nil
}
