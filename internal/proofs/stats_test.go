package proofs

import (
	"math"
	"testing"
)

// TestHitRateIdleEngine: HitRate on an idle engine (zero lookups) must
// be exactly 0.0 — an unguarded division would return NaN, which
// poisons Prometheus gauges and the vchain-sp shutdown report.
func TestHitRateIdleEngine(t *testing.T) {
	var zero Stats
	if r := zero.HitRate(); r != 0.0 {
		t.Fatalf("zero Stats HitRate = %v, want 0.0", r)
	}
	if math.IsNaN(zero.HitRate()) {
		t.Fatal("zero Stats HitRate is NaN")
	}
	// Summing idle snapshots (the sharded aggregation path) must stay
	// guarded too.
	if r := zero.Add(Stats{}).HitRate(); r != 0.0 || math.IsNaN(r) {
		t.Fatalf("aggregated idle HitRate = %v, want 0.0", r)
	}
}

// TestHitRateNonZero sanity-checks the guarded path still computes the
// real ratio once lookups exist.
func TestHitRateNonZero(t *testing.T) {
	s := Stats{CacheHits: 3, CacheMisses: 1}
	if r := s.HitRate(); r != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", r)
	}
}
