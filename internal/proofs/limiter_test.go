package proofs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/multiset"
)

// countingAcc wraps an accumulator and records how many ProveDisjoint
// calls run at once — the observable the shared limiter must bound.
type countingAcc struct {
	accumulator.Accumulator
	inFlight atomic.Int64
	max      atomic.Int64
}

func (c *countingAcc) ProveDisjoint(x1, x2 multiset.Multiset) (accumulator.Proof, error) {
	n := c.inFlight.Add(1)
	for {
		m := c.max.Load()
		if n <= m || c.max.CompareAndSwap(m, n) {
			break
		}
	}
	defer c.inFlight.Add(-1)
	return c.Accumulator.ProveDisjoint(x1, x2)
}

// TestSharedLimiterSplitsBudget runs several engines sharing one
// Limiter — the sharded-SP configuration — and checks the aggregate
// proof concurrency never exceeds the configured budget. Before the
// shared limiter, N shard engines each sized their own semaphore at
// Workers, oversubscribing the host by a factor of N.
func TestSharedLimiterSplitsBudget(t *testing.T) {
	const budget = 2
	acc := &countingAcc{Accumulator: testAcc(t)}
	lim := NewLimiter(budget)
	if lim.Cap() != budget {
		t.Fatalf("limiter cap %d, want %d", lim.Cap(), budget)
	}

	engines := make([]*Engine, 3)
	for i := range engines {
		// Workers is deliberately larger than the budget: the explicit
		// limiter, not the per-engine worker count, must govern.
		engines[i] = New(acc, Options{Workers: 4, CacheSize: -1, Limiter: lim})
	}

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := engines[i%len(engines)]
			w := multiset.New(fmt.Sprintf("elt%d", i)) // distinct pairs: no single-flight dedupe
			cw := multiset.New("van")
			if _, err := e.Prove(w, key("van"), cw); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if got := acc.max.Load(); got > budget {
		t.Fatalf("observed %d concurrent proofs across shared engines, budget is %d", got, budget)
	}
	var total Stats
	for _, e := range engines {
		total = total.Add(e.Stats())
	}
	if total.Proofs != 24 {
		t.Fatalf("aggregated %d proofs across engines, want 24", total.Proofs)
	}
}

// TestStatsAdd checks the aggregation used by sharded shutdown
// reporting sums every counter.
func TestStatsAdd(t *testing.T) {
	a := Stats{Proofs: 1, CacheHits: 2, CacheMisses: 3, Evictions: 4, AggGroups: 5, Errors: 6}
	b := Stats{Proofs: 10, CacheHits: 20, CacheMisses: 30, Evictions: 40, AggGroups: 50, Errors: 60}
	want := Stats{Proofs: 11, CacheHits: 22, CacheMisses: 33, Evictions: 44, AggGroups: 55, Errors: 66}
	if got := a.Add(b); got != want {
		t.Fatalf("Stats.Add = %+v, want %+v", got, want)
	}
}
