package proofs

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/multiset"
	"github.com/vchain-go/vchain/internal/pairingtest"
)

func testAcc(t testing.TB) accumulator.Accumulator {
	t.Helper()
	pr := pairingtest.Params()
	return accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("proofs"))
}

// key mimics core.Clause.Key for a keyword clause.
func key(words ...string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += "\x00"
		}
		out += w
	}
	return out
}

func verify(t *testing.T, acc accumulator.Accumulator, w, cw multiset.Multiset, pf accumulator.Proof) {
	t.Helper()
	aw, err := acc.Setup(w)
	if err != nil {
		t.Fatal(err)
	}
	acw, err := acc.Setup(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !acc.VerifyDisjoint(aw, acw, pf) {
		t.Fatal("cached/computed proof does not verify")
	}
}

func TestProveCachesRepeatedPairs(t *testing.T) {
	acc := testAcc(t)
	e := New(acc, Options{})
	w := multiset.New("sedan", "benz")
	cw := multiset.New("van")

	pf1, err := e.Prove(w, key("van"), cw)
	if err != nil {
		t.Fatal(err)
	}
	// An equal multiset built differently must hit the same entry.
	w2 := multiset.New("benz", "sedan")
	pf2, err := e.Prove(w2, key("van"), cw)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, acc, w, cw, pf1)
	verify(t, acc, w2, cw, pf2)

	st := e.Stats()
	if st.Proofs != 1 || st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want 1 proof / 1 miss / 1 hit", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", got)
	}

	// A different clause with the same multiset is a distinct entry.
	if _, err := e.Prove(w, key("audi"), multiset.New("audi")); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Proofs != 2 {
		t.Fatalf("distinct clause reused a cached proof: %+v", st)
	}
}

func TestProveErrorsAreNotCached(t *testing.T) {
	e := New(testAcc(t), Options{})
	w := multiset.New("sedan")
	cw := multiset.New("sedan") // not disjoint: must fail
	if _, err := e.Prove(w, key("sedan"), cw); !errors.Is(err, accumulator.ErrNotDisjoint) {
		t.Fatalf("want ErrNotDisjoint, got %v", err)
	}
	if _, err := e.Prove(w, key("sedan"), cw); !errors.Is(err, accumulator.ErrNotDisjoint) {
		t.Fatalf("want ErrNotDisjoint again, got %v", err)
	}
	st := e.Stats()
	if st.Proofs != 2 || st.Errors != 2 || st.CacheHits != 0 {
		t.Fatalf("failed proofs must recompute, stats %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	e := New(testAcc(t), Options{CacheSize: 2})
	cw := multiset.New("van")
	pairs := []multiset.Multiset{
		multiset.New("a"), multiset.New("b"), multiset.New("c"),
	}
	for _, w := range pairs {
		if _, err := e.Prove(w, key("van"), cw); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Evictions != 1 {
		t.Fatalf("want 1 eviction, stats %+v", st)
	}
	// "a" was evicted (LRU): proving it again recomputes.
	if _, err := e.Prove(pairs[0], key("van"), cw); err != nil {
		t.Fatal(err)
	}
	// "c" is still resident.
	if _, err := e.Prove(pairs[2], key("van"), cw); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Proofs != 4 || st.CacheHits != 1 {
		t.Fatalf("eviction behavior off: %+v", st)
	}
}

func TestCacheDisabled(t *testing.T) {
	e := New(testAcc(t), Options{CacheSize: -1})
	w, cw := multiset.New("sedan"), multiset.New("van")
	for i := 0; i < 3; i++ {
		if _, err := e.Prove(w, key("van"), cw); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Proofs != 3 || st.CacheHits != 0 {
		t.Fatalf("disabled cache must always compute: %+v", st)
	}
}

// TestConcurrentProveSingleFlight hammers one (w, clause) pair from
// many goroutines: exactly one computation may happen.
func TestConcurrentProveSingleFlight(t *testing.T) {
	acc := testAcc(t)
	e := New(acc, Options{Workers: 4})
	w, cw := multiset.New("sedan", "benz"), multiset.New("van")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pf, err := e.Prove(w, key("van"), cw)
			if err != nil {
				t.Error(err)
				return
			}
			verify(t, acc, w, cw, pf)
		}()
	}
	wg.Wait()
	if st := e.Stats(); st.Proofs != 1 {
		t.Fatalf("single-flight failed: %d computations", st.Proofs)
	}
}

// TestConcurrentProveMixed runs distinct and duplicate pairs from many
// goroutines under -race.
func TestConcurrentProveMixed(t *testing.T) {
	acc := testAcc(t)
	e := New(acc, Options{Workers: 4, CacheSize: 8})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := multiset.New(fmt.Sprintf("elt%d", i%10))
			cw := multiset.New("van")
			pf, err := e.Prove(w, key("van"), cw)
			if err != nil {
				t.Error(err)
				return
			}
			verify(t, acc, w, cw, pf)
		}()
	}
	wg.Wait()
}

func TestRunAssignsAllTasks(t *testing.T) {
	acc := testAcc(t)
	for _, workers := range []int{1, 4} {
		e := New(acc, Options{Workers: workers})
		run := e.NewRun()
		const n = 9
		got := make([]accumulator.Proof, n)
		ws := make([]multiset.Multiset, n)
		for i := 0; i < n; i++ {
			i := i
			ws[i] = multiset.New(fmt.Sprintf("elt%d", i%3)) // duplicates dedupe
			run.Add(ws[i], key("van"), multiset.New("van"), func(pf accumulator.Proof) { got[i] = pf })
		}
		if run.Len() != n {
			t.Fatalf("run length %d", run.Len())
		}
		if err := run.Wait(workers); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			verify(t, acc, ws[i], multiset.New("van"), got[i])
		}
		// 3 distinct pairs → exactly 3 computations.
		if st := e.Stats(); st.Proofs != 3 {
			t.Fatalf("workers=%d: %d computations, want 3", workers, st.Proofs)
		}
		// An exhausted run is reusable and a no-op.
		if err := run.Wait(workers); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunFirstErrorWins(t *testing.T) {
	acc := testAcc(t)
	e := New(acc, Options{Workers: 2})
	run := e.NewRun()
	var okPf accumulator.Proof
	assigned := false
	run.Add(multiset.New("sedan"), key("sedan"), multiset.New("sedan"), func(pf accumulator.Proof) {
		t.Error("assign called for failing task")
	})
	run.Add(multiset.New("sedan"), key("van"), multiset.New("van"), func(pf accumulator.Proof) {
		okPf = pf
		assigned = true
	})
	err := run.Wait(2)
	if !errors.Is(err, accumulator.ErrNotDisjoint) {
		t.Fatalf("want ErrNotDisjoint, got %v", err)
	}
	if !assigned {
		t.Fatal("successful task must still assign")
	}
	verify(t, acc, multiset.New("sedan"), multiset.New("van"), okPf)
}

func TestAggregatorGroupOrdering(t *testing.T) {
	acc := testAcc(t)
	e := New(acc, Options{})
	a := e.NewAggregator()

	// Insertion order: van, audi, van, bmw → groups 0, 1, 0, 2.
	wantIdx := []int{0, 1, 0, 2}
	adds := []struct {
		k  string
		cw multiset.Multiset
		w  multiset.Multiset
	}{
		{key("van"), multiset.New("van"), multiset.New("sedan")},
		{key("audi"), multiset.New("audi"), multiset.New("benz")},
		{key("van"), multiset.New("van"), multiset.New("sedan", "benz")},
		{key("bmw"), multiset.New("bmw"), multiset.New("sedan")},
	}
	for i, ad := range adds {
		if idx := a.Add(ad.k, ad.w, ad.cw); idx != wantIdx[i] {
			t.Fatalf("add %d: group %d, want %d", i, idx, wantIdx[i])
		}
	}
	if a.Len() != 3 {
		t.Fatalf("len %d, want 3", a.Len())
	}

	proofs := make([]accumulator.Proof, 3)
	seen := make([]bool, 3)
	if err := a.Finalize(nil, func(i int, pf accumulator.Proof) {
		proofs[i] = pf
		seen[i] = true
	}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("group %d unproved", i)
		}
	}
	// Group 0 proves the *sum* of its members' multisets.
	verify(t, acc, multiset.SumAll(multiset.New("sedan"), multiset.New("sedan", "benz")),
		multiset.New("van"), proofs[0])
	verify(t, acc, multiset.New("benz"), multiset.New("audi"), proofs[1])
	verify(t, acc, multiset.New("sedan"), multiset.New("bmw"), proofs[2])

	if st := e.Stats(); st.AggGroups != 3 {
		t.Fatalf("AggGroups %d, want 3", st.AggGroups)
	}

	// Deferred finalize via a run produces the same assignments.
	a2 := e.NewAggregator()
	for _, ad := range adds {
		a2.Add(ad.k, ad.w, ad.cw)
	}
	run := e.NewRun()
	deferred := make([]accumulator.Proof, 3)
	if err := a2.Finalize(run, func(i int, pf accumulator.Proof) { deferred[i] = pf }); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(2); err != nil {
		t.Fatal(err)
	}
	verify(t, acc, multiset.New("benz"), multiset.New("audi"), deferred[1])
}

// BenchmarkProve measures the cache-hit speedup on a repeated
// (multiset, clause) pair: cold proves every iteration, warm serves
// from the LRU.
func BenchmarkProve(b *testing.B) {
	acc := testAcc(b)
	w := multiset.New("sedan", "benz", "coupe", "red")
	cw := multiset.New("van")
	b.Run("cold", func(b *testing.B) {
		e := New(acc, Options{CacheSize: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Prove(w, key("van"), cw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := New(acc, Options{})
		if _, err := e.Prove(w, key("van"), cw); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Prove(w, key("van"), cw); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(e.Stats().HitRate()*100, "hit%")
	})
}
