// Command vchain-bench regenerates the vChain paper's evaluation tables
// and figures on synthetic workloads.
//
// Usage:
//
//	vchain-bench -exp table1                 # one experiment
//	vchain-bench -exp all                    # everything (slow)
//	vchain-bench -exp fig9 -blocks 64 -queries 5 -preset default
//	vchain-bench -exp shard -shards 2        # sharded SP smoke (1 vs 2 shards)
//
// Each experiment prints an aligned text table whose rows mirror the
// paper's series, and writes the same data as a machine-readable
// BENCH_<experiment>.json artifact into -json-dir (so CI and the
// process tracking the perf trajectory can diff runs); see
// EXPERIMENTS.md for the paper-vs-measured notes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/vchain-go/vchain/internal/bench"
)

// artifact is the JSON schema of one BENCH_<experiment>.json file:
// the rendered table plus enough context (options, host parallelism,
// wall time) to compare artifacts across runs and machines.
type artifact struct {
	Experiment string        `json:"experiment"`
	Title      string        `json:"title"`
	Note       string        `json:"note,omitempty"`
	Columns    []string      `json:"columns"`
	Rows       [][]string    `json:"rows"`
	Options    bench.Options `json:"options"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	ElapsedMs  int64         `json:"elapsed_ms"`
	Timestamp  string        `json:"timestamp"`
}

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run: "+strings.Join(bench.ExperimentNames(), ", ")+", or 'all'")
		preset  = flag.String("preset", "toy", "pairing preset: toy | default | conservative")
		blocks  = flag.Int("blocks", 0, "chain length per configuration (0 = default)")
		objs    = flag.Int("objects", 0, "objects per block (0 = default)")
		queries = flag.Int("queries", 0, "queries averaged per data point (0 = default)")
		skip    = flag.Int("skiplist", 0, "skip-list size ℓ (0 = default)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = default)")
		shards  = flag.Int("shards", 0, "pin the 'shard' experiment to {1, N} shards (0 = full 1/2/4/NumCPU sweep)")
		jsonDir = flag.String("json-dir", ".", "directory for BENCH_<experiment>.json artifacts (empty = don't write)")
	)
	flag.Parse()

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{
		Preset:          *preset,
		Blocks:          *blocks,
		ObjectsPerBlock: *objs,
		Queries:         *queries,
		SkipListSize:    *skip,
		Seed:            *seed,
		Shards:          *shards,
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		driver, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vchain-bench: unknown experiment %q (want one of %s)\n",
				name, strings.Join(bench.ExperimentNames(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		table, err := driver(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vchain-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Println(table.String())
		fmt.Printf("   (completed in %v)\n\n", elapsed.Round(time.Millisecond))
		if *jsonDir == "" {
			continue
		}
		art := artifact{
			Experiment: name,
			Title:      table.Title,
			Note:       table.Note,
			Columns:    table.Columns,
			Rows:       table.Rows,
			Options:    opts,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			ElapsedMs:  elapsed.Milliseconds(),
			Timestamp:  start.UTC().Format(time.RFC3339),
		}
		data, err := json.MarshalIndent(&art, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "vchain-bench: %s: encoding artifact: %v\n", name, err)
			os.Exit(1)
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vchain-bench: %s: writing %s: %v\n", name, path, err)
			os.Exit(1)
		}
		fmt.Printf("   artifact: %s\n\n", path)
	}
}
