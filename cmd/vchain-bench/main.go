// Command vchain-bench regenerates the vChain paper's evaluation tables
// and figures on synthetic workloads.
//
// Usage:
//
//	vchain-bench -exp table1                 # one experiment
//	vchain-bench -exp all                    # everything (slow)
//	vchain-bench -exp fig9 -blocks 64 -queries 5 -preset default
//
// Each experiment prints an aligned text table whose rows mirror the
// paper's series; see EXPERIMENTS.md for the paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/vchain-go/vchain/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run: "+strings.Join(bench.ExperimentNames(), ", ")+", or 'all'")
		preset  = flag.String("preset", "toy", "pairing preset: toy | default | conservative")
		blocks  = flag.Int("blocks", 0, "chain length per configuration (0 = default)")
		objs    = flag.Int("objects", 0, "objects per block (0 = default)")
		queries = flag.Int("queries", 0, "queries averaged per data point (0 = default)")
		skip    = flag.Int("skiplist", 0, "skip-list size ℓ (0 = default)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = default)")
	)
	flag.Parse()

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.Options{
		Preset:          *preset,
		Blocks:          *blocks,
		ObjectsPerBlock: *objs,
		Queries:         *queries,
		SkipListSize:    *skip,
		Seed:            *seed,
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		driver, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vchain-bench: unknown experiment %q (want one of %s)\n",
				name, strings.Join(bench.ExperimentNames(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		table, err := driver(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vchain-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("   (completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
