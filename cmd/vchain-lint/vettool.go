package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"

	"github.com/vchain-go/vchain/internal/lint"
)

// vetConfig is the per-package configuration cmd/go writes for a vet
// tool: the package's files plus the export data of everything it
// imports, already built. Field names are fixed by the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetTool analyzes the single package described by cfgPath,
// following the go vet tool protocol: diagnostics to stderr, exit 2
// when there are findings, and a facts file written to VetxOutput
// (this suite passes no facts between packages, so the file is a
// constant marker that exists to satisfy the protocol and its cache).
func runVetTool(cfgPath string, analyzers []*lint.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("vchain-lint: no facts\n"), 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		// This run only wanted dependency facts; there are none.
		return 0
	}

	fset := token.NewFileSet()
	pkg, err := lint.CheckFiles(fset, newVetImporter(fset, &cfg), cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, terr)
		}
		return 1
	}

	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) == 0 {
		return 0
	}
	emit(os.Stderr, diags, jsonOut)
	return 2
}

// vetImporter resolves imports from the export data cmd/go already
// built: source import paths go through ImportMap to the canonical
// package path, whose compiled export file PackageFile names.
type vetImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("vchain-lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &vetImporter{cfg: cfg, gc: importer.ForCompiler(fset, "gc", lookup)}
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := v.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return v.gc.Import(path)
}
