// Command vchain-lint runs the project's analyzer suite
// (internal/lint): commitpath, lockio, bigintalias, typederr, and
// ctxflow — the mechanical form of the invariants this codebase's
// correctness arguments rest on.
//
// Standalone, over package patterns (default ./...):
//
//	vchain-lint ./...
//	vchain-lint -run lockio,ctxflow -json ./internal/...
//
// Or as a go vet tool, which reuses cmd/go's build cache and export
// data:
//
//	go vet -vettool=$(which vchain-lint) ./...
//
// Exit status: 0 clean, 1 findings or usage error (standalone),
// 2 findings (vet tool protocol).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/vchain-go/vchain/internal/lint"
)

var (
	jsonOut = flag.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,message}")
	runList = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	tests   = flag.Bool("tests", false, "also analyze in-package _test.go files (standalone mode)")
	vFlag   = flag.String("V", "", "print version and exit (go vet tool protocol)")
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: vchain-lint [-json] [-tests] [-run analyzers] [packages]\n\nanalyzers:\n")
	for _, a := range lint.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
	flag.PrintDefaults()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vchain-lint: ")
	flag.Usage = usage

	// cmd/go probes a vet tool with a bare -flags argument and expects
	// a JSON description of the flags it may forward.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagsJSON()
		return
	}
	flag.Parse()

	if *vFlag != "" {
		printVersion()
		return
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		log.Fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetTool(args[0], analyzers, *jsonOut))
	}
	os.Exit(runStandalone(args, analyzers, *jsonOut, *tests))
}

// printFlagsJSON implements the -flags handshake: each entry tells
// cmd/go a flag's name, whether it is boolean, and its usage text.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool && b.IsBoolFlag(), Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// printVersion implements the -V=full handshake: cmd/go hashes the
// reported identity into its action cache, so the identity must change
// whenever the binary does — hence the self-hash.
func printVersion() {
	sum := "unknown"
	if prog, err := os.Executable(); err == nil {
		if f, err := os.Open(prog); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("vchain-lint version devel buildID=%s\n", sum)
}

func selectAnalyzers(runList string) ([]*lint.Analyzer, error) {
	if runList == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (see -h for the list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func runStandalone(patterns []string, analyzers []*lint.Analyzer, jsonOut, tests bool) int {
	pkgs, err := lint.Load(lint.LoadOptions{Tests: tests}, patterns...)
	if err != nil {
		log.Fatal(err)
	}
	var loadErrs int
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "vchain-lint: %v\n", terr)
			loadErrs++
		}
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	emit(os.Stdout, diags, jsonOut)
	if len(diags) > 0 || loadErrs > 0 {
		return 1
	}
	return 0
}

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emit(w io.Writer, diags []lint.Diagnostic, jsonOut bool) {
	if !jsonOut {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		return
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(findings); err != nil {
		log.Fatal(err)
	}
}
