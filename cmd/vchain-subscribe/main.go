// Command vchain-subscribe is a light-node streaming client for
// vchain-sp: it registers a continuous Boolean range query over TCP
// and prints every pushed publication after verifying it locally —
// header auto-sync, span continuity, and the full VO check run before
// anything is displayed.
//
// Usage:
//
//	vchain-sp -listen 127.0.0.1:7060 -mine-interval 2s &
//	vchain-subscribe -sp 127.0.0.1:7060 -keywords "eth-kw0001" -count 5
//
// The keyword list forms one disjunctive clause (kw1 ∨ kw2 ∨ …);
// -lo/-hi add a numeric range. Exit code 0 means every received
// publication verified; a tampering SP makes the stream error and the
// command exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/service"
)

func main() {
	var (
		spAddr   = flag.String("sp", "127.0.0.1:7060", "SP address")
		keywords = flag.String("keywords", "", "comma-separated OR-clause of keywords")
		lo       = flag.Int64("lo", -1, "numeric range low bound (-1 = none)")
		hi       = flag.Int64("hi", -1, "numeric range high bound")
		width    = flag.Int("width", 8, "numeric bit width (must match the SP)")
		preset   = flag.String("preset", "toy", "pairing preset (must match the SP)")
		count    = flag.Int("count", 0, "exit after this many publications (0 = run until interrupt)")
	)
	flag.Parse()

	pr := pairing.ByName(*preset)
	q := 4096
	acc := accumulator.KeyGenCon2Deterministic(pr, q, accumulator.HashEncoder{Q: q}, []byte("vchain-demo"))

	query := core.Query{Width: *width}
	if *keywords != "" {
		query.Bool = core.CNF{core.KeywordClause(strings.Split(*keywords, ",")...)}
	}
	if *lo >= 0 {
		query.Range = &core.RangeCond{Lo: []int64{*lo}, Hi: []int64{*hi}}
	}
	if _, err := query.CNF(); err != nil {
		fatal(err)
	}

	cli, err := service.Dial(*spAddr)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	light := chain.NewLightStore(0)
	sub, err := cli.Subscribe(query, service.SubscribeConfig{Acc: acc, Light: light})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("subscribed (id %d); streaming verified publications...\n", sub.ID)

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)

	received, results := 0, 0
	for {
		select {
		case d, ok := <-sub.C:
			if !ok {
				if err := sub.Err(); err != nil {
					fatal(fmt.Errorf("stream ended abnormally after %d publications: %w", received, err))
				}
				fmt.Printf("stream ended: %d publications, %d verified results\n", received, results)
				return
			}
			if d.Err != nil {
				fatal(fmt.Errorf("VERIFICATION FAILED — the SP is cheating or misconfigured: %w", d.Err))
			}
			received++
			results += len(d.Objects)
			fmt.Printf("publication [%d,%d]: %d matching objects (verified; %d headers synced)\n",
				d.Pub.From, d.Pub.To, len(d.Objects), light.Height())
			for _, o := range d.Objects {
				fmt.Printf("  %v\n", o)
			}
			if *count > 0 && received >= *count {
				if err := sub.Close(); err != nil {
					fatal(err)
				}
				// Drain the final flush (lazy mode) before exiting.
				for d := range sub.C {
					if d.Err != nil {
						fatal(fmt.Errorf("VERIFICATION FAILED on final span: %w", d.Err))
					}
					results += len(d.Objects)
					fmt.Printf("final span [%d,%d]: %d matching objects (verified)\n",
						d.Pub.From, d.Pub.To, len(d.Objects))
				}
				fmt.Printf("done: %d publications, %d verified results\n", received, results)
				return
			}
		case <-interrupt:
			sub.Close()
			fmt.Printf("interrupted: %d publications, %d verified results\n", received, results)
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vchain-subscribe:", err)
	os.Exit(1)
}
