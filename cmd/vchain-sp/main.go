// Command vchain-sp runs a vChain service provider: it mines a
// synthetic workload into an ADS-carrying chain and serves verifiable
// time-window queries and streaming subscriptions over TCP. Pair it
// with vchain-query (one-shot) and vchain-subscribe (streaming).
//
// Usage:
//
//	vchain-sp -listen 127.0.0.1:7060 -dataset eth -blocks 32
//	vchain-sp -listen 127.0.0.1:7060 -mine-interval 2s -sub-lazy
//	vchain-sp -listen 127.0.0.1:7060 -store ./sp-data -blocks 32
//	vchain-sp -http 127.0.0.1:7080 -tenants tenants.txt -rate 50
//
// With -http the SP additionally serves the HTTP/JSON gateway:
// API-key tenants (provisioned via -tenants, rate-limited by -rate /
// -global-rate, load-shed by -inflight) run verifiable queries over
// plain JSON, and Prometheus-compatible scrapers read every proof,
// shard, and traffic counter on /metrics. Use -metrics for a
// scrape-only listener on a separate port.
//
// With -mine-interval the SP keeps mining (cycling the dataset) after
// startup, fanning each new block's publications out to connected
// subscribers — the paper's §7 scenario end to end.
//
// With -store the chain and its ADS bodies persist in a crash-safe
// segmented-log directory: every mined block is fsynced at commit
// time, and restarting with the same -store resumes from the last
// fully committed block instead of re-mining (a torn tail left by a
// crash is truncated automatically).
//
// With -shards N the SP partitions the chain by height range across N
// shard workers: each owns its own block store subdirectory and proof
// engine (the -workers budget is split, not multiplied), time-window
// queries scatter-gather across the covering shards, and the merged
// VOs verify client-side in one pairing batch. Restarting a sharded
// -store recovers each shard independently.
//
// The SP prints the deterministic system configuration that clients
// must mirror (seed, accumulator, dataset) — in a production deployment
// this would be chain metadata; here it keeps the demo self-contained.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/gateway"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/storage"
	"github.com/vchain-go/vchain/internal/subscribe"
	"github.com/vchain-go/vchain/internal/workload"
)

// spNode is what this command needs from a node, satisfied by both the
// monolithic core.FullNode and the sharded shard.Node.
type spNode interface {
	service.Chain
	MineBlock(objs []chain.Object, ts int64) (*chain.Block, error)
	Height() int
	Close() error
}

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7060", "address to serve on")
		dataset  = flag.String("dataset", "eth", "workload: 4sq | wx | eth")
		blocks   = flag.Int("blocks", 16, "blocks to mine at startup")
		objs     = flag.Int("objects", 4, "objects per block")
		preset   = flag.String("preset", "toy", "pairing preset")
		seed     = flag.Int64("seed", 42, "workload seed")
		workers  = flag.Int("workers", 4, "proof-computation workers (a sharded SP splits this budget across shards)")
		cache    = flag.Int("proof-cache", 0, "proof cache entries (0 = default, <0 disables)")
		interval = flag.Duration("mine-interval", 0, "keep mining one block per interval after startup (0 = off)")
		subLazy  = flag.Bool("sub-lazy", false, "lazy subscription authentication (§7.2): defer mismatch proofs into spans")
		subIP    = flag.Bool("sub-iptree", true, "share clause evaluation across subscriptions with the IP-tree (§7.1)")
		subLT    = flag.Int("lazy-threshold", 0, "blocks a lazy span may stay pending (0 = engine default)")
		maxFrame = flag.Int("max-frame", 0, "wire frame size cap in bytes (0 = default)")
		store    = flag.String("store", "", "block store directory: blocks and ADSs persist there and are recovered on restart (empty = in-memory)")
	adsCache = flag.Int("ads-cache", 0, "decoded-ADS cache budget in blocks for durable stores, split across shards: older ADSs stay on disk and page in on demand (0 = unbounded)")
		shards   = flag.Int("shards", 1, "shard the SP by height range across this many workers (queries scatter-gather, VOs merge into one pairing batch)")
		band     = flag.Int("band", 0, "consecutive heights per shard band (0 = default)")

		breakerN  = flag.Int("breaker-threshold", 0, "consecutive shard failures before its circuit breaker quarantines it (0 = default 3, <0 disables)")
		breakerCD = flag.Duration("breaker-cooldown", 0, "quarantine cooldown before the supervisor retries a shard restart (0 = default 5s)")
		supervise = flag.Duration("supervise", time.Second, "shard supervisor scan interval: restart quarantined shards from their logs (0 = off)")
		healthLog = flag.Duration("health-log", 0, "print a one-line shard health summary every interval (0 = off)")

		httpAddr    = flag.String("http", "", "HTTP/JSON gateway address: /v1 query API plus /metrics (empty = off)")
		tenantsFile = flag.String("tenants", "", "tenant provisioning file, name:key[:rate[:burst]] per line (empty = open gateway)")
		rate        = flag.Float64("rate", 0, "default per-tenant gateway rate in requests/second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "default per-tenant gateway burst (0 = derived from the rate)")
		globalRate  = flag.Float64("global-rate", 0, "gateway-wide rate cap in requests/second (0 = unlimited)")
		inflight    = flag.Int("inflight", 0, "gateway max concurrently processed requests (0 = default, <0 uncapped)")
		metricsAddr = flag.String("metrics", "", "standalone scrape-only listener serving /metrics and /healthz (empty = off)")
	)
	flag.Parse()

	ds, err := workload.Generate(workload.Config{
		Kind: workload.Kind(*dataset), Blocks: *blocks, ObjectsPerBlock: *objs, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vchain-sp:", err)
		os.Exit(1)
	}
	pr := pairing.ByName(*preset)
	// The demo derives the accumulator key deterministically so that
	// vchain-query and vchain-subscribe can reconstruct the same
	// public key.
	q := 4096
	acc := accumulator.KeyGenCon2Deterministic(pr, q, accumulator.HashEncoder{Q: q}, []byte("vchain-demo"))
	builder := &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: ds.Width}
	var node spNode
	var snode *shard.Node // set when sharded, for the per-shard stats breakdown
	if *shards > 1 {
		opts := shard.Options{
			Shards: *shards, Band: *band, Workers: *workers, CacheSize: *cache,
			ADSCacheBlocks:   *adsCache,
			FailureThreshold: *breakerN, BreakerCooldown: *breakerCD,
		}
		if *store != "" {
			// Durable sharded SP: reopen every shard's segmented log
			// (each recovering its own torn tail) and resume from the
			// last height all shards agree on.
			sn, rep, err := shard.Open(0, builder, *store, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vchain-sp:", err)
				os.Exit(1)
			}
			for _, sr := range rep.Shards {
				switch {
				case sr.Log.Truncated || sr.Dropped > 0:
					fmt.Printf("store %s/%s: recovered %d records (torn tail: %v, %d stranded records dropped)\n",
						*store, sr.Dir, sr.Log.Records, sr.Log.Truncated, sr.Dropped)
				case sr.Log.Records > 0:
					fmt.Printf("store %s/%s: reopened with %d records\n", *store, sr.Dir, sr.Log.Records)
				}
			}
			if rep.Blocks > 0 {
				fmt.Printf("store %s: resumed at height %d across %d shards\n", *store, rep.Blocks, *shards)
			}
			snode = sn
		} else {
			snode = shard.New(0, builder, opts)
		}
		node = snode
	} else if *store != "" {
		// Durable SP: reopen the segmented-log block store, recovering
		// any crash-torn tail, and continue the chain from where the
		// previous process stopped.
		fn, err := core.OpenFullNode(0, builder, *store, storage.Options{}, core.WithADSCache(*adsCache))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vchain-sp:", err)
			os.Exit(1)
		}
		if log, ok := fn.Backend().(*storage.Log); ok {
			rep := log.Report()
			if rep.Truncated {
				fmt.Printf("store %s: recovered %d blocks (truncated a torn tail: %d bytes, %d segments dropped)\n",
					*store, rep.Records, rep.DroppedBytes, rep.DroppedSegments)
			} else if rep.Records > 0 {
				fmt.Printf("store %s: reopened with %d blocks\n", *store, rep.Records)
			}
		}
		fn.Proofs = proofs.New(acc, proofs.Options{Workers: *workers, CacheSize: *cache})
		node = fn
	} else {
		fn := core.NewFullNode(0, builder)
		fn.Proofs = proofs.New(acc, proofs.Options{Workers: *workers, CacheSize: *cache})
		node = fn
	}
	defer node.Close()
	mined := node.Height()
	mine := func(objs []chain.Object) error {
		if _, err := node.MineBlock(objs, int64(mined)); err != nil {
			return err
		}
		mined++
		return nil
	}
	if mined < *blocks {
		fmt.Printf("mining %d blocks of %s (%d objects each)...\n", *blocks-mined, *dataset, *objs)
	}
	for mined < *blocks {
		if err := mine(ds.Blocks[mined%len(ds.Blocks)]); err != nil {
			fmt.Fprintln(os.Stderr, "vchain-sp:", err)
			os.Exit(1)
		}
	}
	srv := service.NewServer(node, service.ServerConfig{
		MaxFrame: *maxFrame,
		Subscriptions: subscribe.Options{
			UseIPTree:     *subIP,
			Lazy:          *subLazy,
			LazyThreshold: *subLT,
			Dims:          ds.Dims,
			Width:         ds.Width,
		},
	})
	addr, err := srv.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vchain-sp:", err)
		os.Exit(1)
	}
	fmt.Printf("serving on %s  (dataset=%s blocks=%d preset=%s seed=%d width=%d shards=%d)\n",
		addr, *dataset, *blocks, *preset, *seed, ds.Width, *shards)
	fmt.Println("query with:     vchain-query -sp", addr, "-preset", *preset, "-width", ds.Width)
	fmt.Println("subscribe with: vchain-subscribe -sp", addr, "-preset", *preset, "-width", ds.Width)

	// HTTP front door: the JSON query API with per-tenant admission
	// control, and/or a standalone scrape-only metrics listener. Both
	// draw from one gateway (one metric registry) layered over the same
	// node the gob endpoint serves.
	var gw *gateway.Gateway
	if *httpAddr != "" || *metricsAddr != "" {
		var tenants []gateway.Tenant
		if *tenantsFile != "" {
			tenants, err = gateway.LoadTenants(*tenantsFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vchain-sp:", err)
				os.Exit(1)
			}
		}
		gw, err = gateway.New(node, gateway.Config{
			Tenants:     tenants,
			TenantRate:  *rate,
			TenantBurst: *burst,
			GlobalRate:  *globalRate,
			MaxInflight: *inflight,
			Logger:      slog.New(slog.NewTextHandler(os.Stdout, nil)),
			ServiceCounters: map[string]func() int64{
				"evictions": func() int64 { return int64(srv.Evictions()) },
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vchain-sp:", err)
			os.Exit(1)
		}
		if *httpAddr != "" {
			haddr, err := gw.Serve(*httpAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vchain-sp:", err)
				os.Exit(1)
			}
			defer gw.Close()
			fmt.Printf("gateway on http://%s  (tenants=%d rate=%g inflight=%d)\n",
				haddr, len(tenants), *rate, *inflight)
			fmt.Printf("scrape with:    curl http://%s/metrics\n", haddr)
		}
		if *metricsAddr != "" {
			mln, err := net.Listen("tcp", *metricsAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vchain-sp:", err)
				os.Exit(1)
			}
			msrv := &http.Server{Handler: gw.MetricsHandler(), ReadHeaderTimeout: 10 * time.Second}
			go msrv.Serve(mln)
			defer msrv.Close()
			fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
		}
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)

	// Shard supervision: quarantined shards (breaker tripped) are
	// restarted from their durable logs once their cooldown passes.
	if snode != nil && *supervise > 0 {
		stop := snode.Supervise(*supervise)
		defer stop()
		fmt.Printf("supervising %d shards every %v (breaker: %d failures, %v cooldown)\n",
			*shards, *supervise, *breakerN, *breakerCD)
	}
	if snode != nil && *healthLog > 0 {
		hticker := time.NewTicker(*healthLog)
		defer hticker.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-hticker.C:
					fmt.Println(healthLine(snode))
				case <-done:
					return
				}
			}
		}()
	}

	if *interval > 0 {
		// Continuous mining: cycle the dataset's blocks so subscribers
		// keep receiving publications. ProcessBlock fans each block's
		// due publications out to every connected subscriber.
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		fmt.Printf("mining one block every %v (ctrl-C to stop)\n", *interval)
	loop:
		for {
			select {
			case <-ticker.C:
				if err := mine(ds.Blocks[mined%len(ds.Blocks)]); err != nil {
					fmt.Fprintln(os.Stderr, "vchain-sp: mining:", err)
					break loop
				}
				if err := srv.ProcessBlock(mined - 1); err != nil {
					fmt.Fprintln(os.Stderr, "vchain-sp: fan-out:", err)
					break loop
				}
				if subs := srv.Subscriptions(); len(subs) > 0 {
					fmt.Printf("height %d mined; %d subscription(s) processed\n", mined-1, len(subs))
				}
			case <-ch:
				break loop
			}
		}
	} else {
		<-ch
	}
	srv.Close()

	// Aggregate across every engine: on a sharded SP each shard runs
	// its own engine, and printing only the first engine's counters
	// would under-report the process by a factor of the shard count.
	st := node.ProofStats()
	fmt.Printf("proof engine: %d proofs computed, %d cache hits / %d misses (%.1f%% hit rate), %d agg groups, %d errors\n",
		st.Proofs, st.CacheHits, st.CacheMisses, st.HitRate()*100, st.AggGroups, st.Errors)
	if snode != nil {
		var restarts, trips uint64
		for _, ss := range snode.ShardStats() {
			p := ss.Proofs
			fmt.Printf("  shard %d [%s]: %d proofs, %d hits / %d misses, %d agg groups, %d errors; %d failures, %d restarts, %d breaker trips\n",
				ss.Shard, ss.Health, p.Proofs, p.CacheHits, p.CacheMisses, p.AggGroups, p.Errors,
				ss.Failures, ss.Restarts, ss.BreakerTrips)
			restarts += ss.Restarts
			trips += ss.BreakerTrips
		}
		fmt.Printf("fault tolerance: %d shard restarts, %d breaker trips\n", restarts, trips)
	}
	if ev := srv.Evictions(); ev > 0 {
		fmt.Printf("slow consumers evicted: %d\n", ev)
	}
	if gw != nil {
		fmt.Printf("gateway: %d requests served, %d VO bytes shipped\n",
			gw.RequestsServed(), gw.VOBytesServed())
	}
}

// healthLine renders the periodic one-line shard health summary, e.g.
// "shards: 0=healthy 1=quarantined(2 restarts) 2=healthy 3=healthy".
func healthLine(n *shard.Node) string {
	line := "shards:"
	for _, ss := range n.ShardStats() {
		line += fmt.Sprintf(" %d=%s", ss.Shard, ss.Health)
		if ss.Restarts > 0 || ss.BreakerTrips > 0 {
			line += fmt.Sprintf("(%d trips, %d restarts)", ss.BreakerTrips, ss.Restarts)
		}
	}
	return line
}
