// Command vchain-sp runs a vChain service provider: it mines a
// synthetic workload into an ADS-carrying chain and serves verifiable
// time-window queries over TCP. Pair it with vchain-query.
//
// Usage:
//
//	vchain-sp -listen 127.0.0.1:7060 -dataset eth -blocks 32
//
// The SP prints the deterministic system configuration that clients
// must mirror (seed, accumulator, dataset) — in a production deployment
// this would be chain metadata; here it keeps the demo self-contained.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/workload"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7060", "address to serve on")
		dataset = flag.String("dataset", "eth", "workload: 4sq | wx | eth")
		blocks  = flag.Int("blocks", 16, "blocks to mine")
		objs    = flag.Int("objects", 4, "objects per block")
		preset  = flag.String("preset", "toy", "pairing preset")
		seed    = flag.Int64("seed", 42, "workload seed")
		workers = flag.Int("workers", 4, "proof-computation workers")
		cache   = flag.Int("proof-cache", 0, "proof cache entries (0 = default, <0 disables)")
	)
	flag.Parse()

	ds, err := workload.Generate(workload.Config{
		Kind: workload.Kind(*dataset), Blocks: *blocks, ObjectsPerBlock: *objs, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vchain-sp:", err)
		os.Exit(1)
	}
	pr := pairing.ByName(*preset)
	// The demo derives the accumulator key deterministically so that
	// vchain-query can reconstruct the same public key.
	q := 4096
	acc := accumulator.KeyGenCon2Deterministic(pr, q, accumulator.HashEncoder{Q: q}, []byte("vchain-demo"))
	node := core.NewFullNode(0, &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: ds.Width})
	node.Proofs = proofs.New(acc, proofs.Options{Workers: *workers, CacheSize: *cache})
	fmt.Printf("mining %d blocks of %s (%d objects each)...\n", *blocks, *dataset, *objs)
	for i, blk := range ds.Blocks {
		if _, err := node.MineBlock(blk, int64(i)); err != nil {
			fmt.Fprintln(os.Stderr, "vchain-sp:", err)
			os.Exit(1)
		}
	}
	srv := service.NewServer(node)
	addr, err := srv.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vchain-sp:", err)
		os.Exit(1)
	}
	fmt.Printf("serving on %s  (dataset=%s blocks=%d preset=%s seed=%d width=%d)\n",
		addr, *dataset, *blocks, *preset, *seed, ds.Width)
	fmt.Println("query with: vchain-query -sp", addr, "-preset", *preset, "-width", ds.Width)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	srv.Close()

	st := node.ProofEngine().Stats()
	fmt.Printf("proof engine: %d proofs computed, %d cache hits / %d misses (%.1f%% hit rate), %d agg groups, %d errors\n",
		st.Proofs, st.CacheHits, st.CacheMisses, st.HitRate()*100, st.AggGroups, st.Errors)
}
