// Command vchain-query is a light-node client for vchain-sp: it syncs
// headers, runs a verifiable time-window query against the untrusted
// SP, and verifies the returned VO locally before printing results.
//
// Usage:
//
//	vchain-query -sp 127.0.0.1:7060 -from 0 -to 15 -keywords "eth-kw0001,eth-kw0002" -lo 5 -hi 60
//
// The keyword list forms one disjunctive clause (kw1 ∨ kw2 ∨ …); -lo/-hi
// give the numeric range. Exit code 0 means the results verified.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/service"
)

func main() {
	var (
		spAddr   = flag.String("sp", "127.0.0.1:7060", "SP address")
		from     = flag.Int("from", 0, "window start block")
		to       = flag.Int("to", 0, "window end block (0 = chain tip)")
		keywords = flag.String("keywords", "", "comma-separated OR-clause of keywords")
		lo       = flag.Int64("lo", -1, "numeric range low bound (-1 = none)")
		hi       = flag.Int64("hi", -1, "numeric range high bound")
		width    = flag.Int("width", 8, "numeric bit width (must match the SP)")
		preset   = flag.String("preset", "toy", "pairing preset (must match the SP)")
		batched  = flag.Bool("batched", false, "request online batch verification")
		seqVer   = flag.Bool("seq-verify", false, "use the sequential baseline verifier instead of the batched engine")
		workers  = flag.Int("verify-workers", 0, "batched verification workers (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "per-call deadline, propagated into the SP's proof walk (0 = SP client default)")
		retries  = flag.Int("retries", 1, "total attempts per idempotent call (transport failures re-dial between attempts)")
		backoff  = flag.Duration("retry-backoff", 0, "first retry's backoff ceiling, doubling with jitter (0 = default 50ms)")
		degraded = flag.Bool("degraded", false, "accept a verified partial answer (with machine-readable gaps) when the SP has shards down")
	)
	flag.Parse()

	pr := pairing.ByName(*preset)
	q := 4096
	acc := accumulator.KeyGenCon2Deterministic(pr, q, accumulator.HashEncoder{Q: q}, []byte("vchain-demo"))

	cli, err := service.Dial(*spAddr, service.ClientConfig{
		RPCTimeout: *timeout,
		Retry:      service.RetryPolicy{Attempts: *retries, BaseBackoff: *backoff},
	})
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	ctx := context.Background()
	light := chain.NewLightStore(0)
	if err := cli.SyncHeaders(ctx, light); err != nil {
		fatal(fmt.Errorf("header sync failed (tampered chain?): %w", err))
	}
	fmt.Printf("synced %d headers (%d bits of light storage)\n", light.Height(), light.SizeBits())

	end := *to
	if end <= 0 {
		end = light.Height() - 1
	}
	query := core.Query{StartBlock: *from, EndBlock: end, Width: *width}
	if *keywords != "" {
		query.Bool = core.CNF{core.KeywordClause(strings.Split(*keywords, ",")...)}
	}
	if *lo >= 0 {
		query.Range = &core.RangeCond{Lo: []int64{*lo}, Hi: []int64{*hi}}
	}
	if _, err := query.CNF(); err != nil {
		fatal(err)
	}

	// QueryParts handles both answer shapes: a monolithic SP returns one
	// part spanning the window, a sharded SP several (one per covering
	// shard span); either way the union verifies in one pairing batch.
	// With -degraded the SP may additionally declare gaps for shards it
	// cannot serve; the gap claims are verified to tile the window.
	var parts []core.WindowPart
	var gaps []core.Gap
	if *degraded {
		parts, gaps, err = cli.QueryDegraded(ctx, query, *batched)
	} else {
		parts, err = cli.QueryParts(ctx, query, *batched)
	}
	if err != nil {
		fatal(err)
	}
	voBytes := 0
	for _, p := range parts {
		voBytes += p.VO.SizeBytes(acc)
	}
	if len(parts) == 1 {
		fmt.Printf("VO received: %d bytes\n", voBytes)
	} else {
		fmt.Printf("VO received: %d bytes in %d shard parts\n", voBytes, len(parts))
	}
	if n := cli.Retries(); n > 0 {
		fmt.Printf("transport: %d retries, %d reconnects\n", n, cli.Reconnects())
	}

	ver := &core.Verifier{Acc: acc, Light: light, Sequential: *seqVer, Workers: *workers}
	t0 := time.Now()
	res, err := ver.VerifyDegraded(query, parts, gaps)
	if err != nil && !errors.Is(err, core.ErrDegraded) {
		fatal(fmt.Errorf("VERIFICATION FAILED — the SP is cheating or misconfigured: %w", err))
	}
	mode := "batched"
	if *seqVer {
		mode = "sequential"
	}
	fmt.Printf("verified %d results in %v (%s; soundness + completeness hold):\n",
		len(res.Objects), time.Since(t0).Round(time.Microsecond), mode)
	for _, o := range res.Objects {
		fmt.Printf("  %v\n", o)
	}
	if len(res.Gaps) > 0 {
		fmt.Printf("DEGRADED ANSWER: %d of %d window blocks unproven:\n",
			query.EndBlock-query.StartBlock+1-res.Covered(), query.EndBlock-query.StartBlock+1)
		for _, g := range res.Gaps {
			fmt.Printf("  gap: blocks [%d,%d]\n", g.Start, g.End)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vchain-query:", err)
	os.Exit(1)
}
