// Command vchain-query is a light-node client for vchain-sp: it syncs
// headers, runs a verifiable time-window query against the untrusted
// SP, and verifies the returned VO locally before printing results.
//
// Usage:
//
//	vchain-query -sp 127.0.0.1:7060 -from 0 -to 15 -keywords "eth-kw0001,eth-kw0002" -lo 5 -hi 60
//
// The keyword list forms one disjunctive clause (kw1 ∨ kw2 ∨ …); -lo/-hi
// give the numeric range. Exit code 0 means the results verified.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/service"
)

func main() {
	var (
		spAddr   = flag.String("sp", "127.0.0.1:7060", "SP address")
		from     = flag.Int("from", 0, "window start block")
		to       = flag.Int("to", 0, "window end block (0 = chain tip)")
		keywords = flag.String("keywords", "", "comma-separated OR-clause of keywords")
		lo       = flag.Int64("lo", -1, "numeric range low bound (-1 = none)")
		hi       = flag.Int64("hi", -1, "numeric range high bound")
		width    = flag.Int("width", 8, "numeric bit width (must match the SP)")
		preset   = flag.String("preset", "toy", "pairing preset (must match the SP)")
		batched  = flag.Bool("batched", false, "request online batch verification")
		seqVer   = flag.Bool("seq-verify", false, "use the sequential baseline verifier instead of the batched engine")
		workers  = flag.Int("verify-workers", 0, "batched verification workers (0 = all cores)")
	)
	flag.Parse()

	pr := pairing.ByName(*preset)
	q := 4096
	acc := accumulator.KeyGenCon2Deterministic(pr, q, accumulator.HashEncoder{Q: q}, []byte("vchain-demo"))

	cli, err := service.Dial(*spAddr)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	light := chain.NewLightStore(0)
	if err := cli.SyncHeaders(light); err != nil {
		fatal(fmt.Errorf("header sync failed (tampered chain?): %w", err))
	}
	fmt.Printf("synced %d headers (%d bits of light storage)\n", light.Height(), light.SizeBits())

	end := *to
	if end <= 0 {
		end = light.Height() - 1
	}
	query := core.Query{StartBlock: *from, EndBlock: end, Width: *width}
	if *keywords != "" {
		query.Bool = core.CNF{core.KeywordClause(strings.Split(*keywords, ",")...)}
	}
	if *lo >= 0 {
		query.Range = &core.RangeCond{Lo: []int64{*lo}, Hi: []int64{*hi}}
	}
	if _, err := query.CNF(); err != nil {
		fatal(err)
	}

	// QueryParts handles both answer shapes: a monolithic SP returns one
	// part spanning the window, a sharded SP several (one per covering
	// shard span); either way the union verifies in one pairing batch.
	parts, err := cli.QueryParts(query, *batched)
	if err != nil {
		fatal(err)
	}
	voBytes := 0
	for _, p := range parts {
		voBytes += p.VO.SizeBytes(acc)
	}
	if len(parts) == 1 {
		fmt.Printf("VO received: %d bytes\n", voBytes)
	} else {
		fmt.Printf("VO received: %d bytes in %d shard parts\n", voBytes, len(parts))
	}

	ver := &core.Verifier{Acc: acc, Light: light, Sequential: *seqVer, Workers: *workers}
	t0 := time.Now()
	results, err := ver.VerifyWindowParts(query, parts)
	if err != nil {
		fatal(fmt.Errorf("VERIFICATION FAILED — the SP is cheating or misconfigured: %w", err))
	}
	mode := "batched"
	if *seqVer {
		mode = "sequential"
	}
	fmt.Printf("verified %d results in %v (%s; soundness + completeness hold):\n",
		len(results), time.Since(t0).Round(time.Microsecond), mode)
	for _, o := range results {
		fmt.Printf("  %v\n", o)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vchain-query:", err)
	os.Exit(1)
}
