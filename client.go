package vchain

import (
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// LightClient is the query user: it stores block headers only and
// verifies SP answers against them. A nil error from Verify certifies
// that the returned objects are exactly the correct result set
// (soundness and completeness, §3).
type LightClient struct {
	sys   *System
	light *chain.LightStore
}

// NewLightClient creates an empty light client for this system.
func (s *System) NewLightClient() *LightClient {
	return &LightClient{
		sys:   s,
		light: chain.NewLightStore(chain.Difficulty(s.cfg.Difficulty)),
	}
}

// SyncHeaders ingests headers, validating linkage and proof-of-work.
func (c *LightClient) SyncHeaders(headers []Header) error {
	return c.light.Sync(headers)
}

// Height returns the number of synced headers.
func (c *LightClient) Height() int { return c.light.Height() }

// StorageBits reports the client's header storage in bits (the light
// node cost metric of Table 1).
func (c *LightClient) StorageBits() int { return c.light.SizeBits() }

// WindowByTime resolves a timestamp window [ts, te] to block heights
// against the client's own headers (never trusting the SP's mapping).
// ok is false when no synced block falls inside the window.
func (c *LightClient) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return c.light.WindowByTime(ts, te)
}

// Verify checks a time-window VO and returns the verified result set.
// It runs the batched verification engine: a structural walk collects
// every disjointness check, then one randomized pairing-product batch
// resolves them across all cores — several times faster than checking
// each proof's pairings individually, with identical accept/reject
// behavior.
func (c *LightClient) Verify(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Workers: c.sys.cfg.VerifyWorkers}
	return v.VerifyTimeWindow(q, vo)
}

// VerifySequential checks a VO with the paper's baseline verifier: two
// pairings per disjointness proof, resolved in walk order. It accepts
// and rejects exactly the same VOs as Verify; it exists for
// differential testing and as the batched engine's benchmark baseline.
func (c *LightClient) VerifySequential(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Sequential: true}
	return v.VerifyTimeWindow(q, vo)
}

// VerifyPublication checks a subscription delivery for query q.
func (c *LightClient) VerifyPublication(q Query, pub *Publication) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light}
	return subscribe.VerifyPublication(v, q, pub)
}

// VOSize reports a VO's transfer size in bytes (the paper's VO-size
// metric; result payloads excluded).
func (c *LightClient) VOSize(vo *VO) int { return vo.SizeBytes(c.sys.acc) }

// SPClient is a light client's connection to a remote SP (a node
// serving via FullNode.Serve). Every answer — one-shot or streamed —
// is verified locally against the client's own header store before it
// is returned; the SP is never trusted.
type SPClient struct {
	c   *LightClient
	cli *service.Client
}

// DialSP connects this light client to a remote SP. The connection
// shares the client's header store: headers sync over it and every VO
// verifies against it.
func (c *LightClient) DialSP(addr string) (*SPClient, error) {
	cli, err := service.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &SPClient{c: c, cli: cli}, nil
}

// SyncHeaders fetches headers the client doesn't have yet (in bounded
// batches), validating linkage and proof-of-work locally.
func (s *SPClient) SyncHeaders() error {
	return s.cli.SyncHeaders(s.c.light)
}

// Query runs a remote time-window query and verifies the VO locally
// before returning the results (headers are synced first). A nil
// error certifies soundness and completeness.
func (s *SPClient) Query(q Query, batched bool) ([]Object, error) {
	if err := s.SyncHeaders(); err != nil {
		return nil, err
	}
	ver := &core.Verifier{Acc: s.c.sys.acc, Light: s.c.light, Workers: s.c.sys.cfg.VerifyWorkers}
	return s.cli.QueryVerified(q, batched, ver)
}

// Subscribe registers a continuous query at the SP and returns a
// stream of locally verified publications: read RemoteStream.C until
// it closes; Close to unsubscribe. Tampered publications surface as
// Delivery.Err wrapping ErrSoundness/ErrCompleteness and are never
// delivered as results.
func (s *SPClient) Subscribe(q Query) (*RemoteStream, error) {
	return s.cli.Subscribe(q, service.SubscribeConfig{
		Acc:           s.c.sys.acc,
		Light:         s.c.light,
		VerifyWorkers: s.c.sys.cfg.VerifyWorkers,
	})
}

// Stats fetches the SP's proof-engine counters.
func (s *SPClient) Stats() (ProofStats, error) { return s.cli.Stats() }

// Close disconnects (ending every subscription stream).
func (s *SPClient) Close() error { return s.cli.Close() }
