package vchain

import (
	"context"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// LightClient is the query user: it stores block headers only and
// verifies SP answers against them. A nil error from Verify certifies
// that the returned objects are exactly the correct result set
// (soundness and completeness, §3).
type LightClient struct {
	sys   *System
	light *chain.LightStore
}

// NewLightClient creates an empty light client for this system.
func (s *System) NewLightClient() *LightClient {
	return &LightClient{
		sys:   s,
		light: chain.NewLightStore(chain.Difficulty(s.cfg.Difficulty)),
	}
}

// SyncHeaders ingests headers, validating linkage and proof-of-work.
func (c *LightClient) SyncHeaders(headers []Header) error {
	return c.light.Sync(headers)
}

// Height returns the number of synced headers.
func (c *LightClient) Height() int { return c.light.Height() }

// StorageBits reports the client's header storage in bits (the light
// node cost metric of Table 1).
func (c *LightClient) StorageBits() int { return c.light.SizeBits() }

// WindowByTime resolves a timestamp window [ts, te] to block heights
// against the client's own headers (never trusting the SP's mapping).
// ok is false when no synced block falls inside the window.
func (c *LightClient) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return c.light.WindowByTime(ts, te)
}

// Verify checks a time-window VO and returns the verified result set.
// It runs the batched verification engine: a structural walk collects
// every disjointness check, then one randomized pairing-product batch
// resolves them across all cores — several times faster than checking
// each proof's pairings individually, with identical accept/reject
// behavior.
func (c *LightClient) Verify(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Workers: c.sys.cfg.VerifyWorkers}
	return v.VerifyTimeWindow(q, vo)
}

// VerifySequential checks a VO with the paper's baseline verifier: two
// pairings per disjointness proof, resolved in walk order. It accepts
// and rejects exactly the same VOs as Verify; it exists for
// differential testing and as the batched engine's benchmark baseline.
func (c *LightClient) VerifySequential(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Sequential: true}
	return v.VerifyTimeWindow(q, vo)
}

// VerifyPublication checks a subscription delivery for query q.
func (c *LightClient) VerifyPublication(q Query, pub *Publication) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light}
	return subscribe.VerifyPublication(v, q, pub)
}

// VOSize reports a VO's transfer size in bytes (the paper's VO-size
// metric; result payloads excluded).
func (c *LightClient) VOSize(vo *VO) int { return vo.SizeBytes(c.sys.acc) }

// SPClient is a light client's connection to a remote SP (a node
// serving via FullNode.Serve). Every answer — one-shot or streamed —
// is verified locally against the client's own header store before it
// is returned; the SP is never trusted.
type SPClient struct {
	c   *LightClient
	cli *service.Client
}

// SPOptions tunes an SP connection: timeouts and the retry policy for
// idempotent requests (header sync, queries, stats). The zero value
// means the service defaults: 10s dial, 30s RPC, no retries.
type SPOptions struct {
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// RPCTimeout bounds each request/response round trip. The deadline
	// also rides the request so the SP abandons a proof walk whose
	// caller has given up.
	RPCTimeout time.Duration
	// RetryAttempts is the total tries per idempotent call (default 1:
	// no retries). Failed connections are re-dialed transparently
	// between attempts; subscriptions are never retried.
	RetryAttempts int
	// RetryBaseBackoff is the first retry's backoff ceiling (default
	// 50ms), doubling per retry up to RetryMaxBackoff (default 2s),
	// with jitter.
	RetryBaseBackoff time.Duration
	// RetryMaxBackoff caps the exponential backoff.
	RetryMaxBackoff time.Duration
}

// DialSP connects this light client to a remote SP. The connection
// shares the client's header store: headers sync over it and every VO
// verifies against it. Optional SPOptions tune timeouts and retries.
func (c *LightClient) DialSP(addr string, opts ...SPOptions) (*SPClient, error) {
	var cfg service.ClientConfig
	if len(opts) > 0 {
		o := opts[0]
		cfg.DialTimeout = o.DialTimeout
		cfg.RPCTimeout = o.RPCTimeout
		cfg.Retry = service.RetryPolicy{
			Attempts:    o.RetryAttempts,
			BaseBackoff: o.RetryBaseBackoff,
			MaxBackoff:  o.RetryMaxBackoff,
		}
	}
	cli, err := service.Dial(addr, cfg)
	if err != nil {
		return nil, err
	}
	return &SPClient{c: c, cli: cli}, nil
}

// SyncHeaders fetches headers the client doesn't have yet (in bounded
// batches), validating linkage and proof-of-work locally.
func (s *SPClient) SyncHeaders() error {
	return s.cli.SyncHeaders(context.Background(), s.c.light)
}

// Query runs a remote time-window query and verifies the VO locally
// before returning the results (headers are synced first). A nil
// error certifies soundness and completeness.
func (s *SPClient) Query(q Query, batched bool) ([]Object, error) {
	return s.QueryCtx(context.Background(), q, batched)
}

// QueryCtx is Query under a caller context: the deadline bounds the
// round trip locally and propagates to the SP's proof walk.
func (s *SPClient) QueryCtx(ctx context.Context, q Query, batched bool) ([]Object, error) {
	if err := s.cli.SyncHeaders(ctx, s.c.light); err != nil {
		return nil, err
	}
	ver := &core.Verifier{Acc: s.c.sys.acc, Light: s.c.light, Workers: s.c.sys.cfg.VerifyWorkers}
	return s.cli.QueryVerified(ctx, q, batched, ver)
}

// QueryDegraded runs a remote time-window query in degraded-read mode
// and verifies the partial answer locally. Against an SP with a
// quarantined shard the verified provable sub-windows come back as a
// DegradedResult alongside ErrDegraded; with every shard healthy the
// result has no gaps and the error is nil. The gap claims are
// cryptographically checked to tile the window exactly with the
// proved parts — the SP cannot shrink the answer silently.
func (s *SPClient) QueryDegraded(q Query, batched bool) (*DegradedResult, error) {
	return s.QueryDegradedCtx(context.Background(), q, batched)
}

// QueryDegradedCtx is QueryDegraded under a caller context.
func (s *SPClient) QueryDegradedCtx(ctx context.Context, q Query, batched bool) (*DegradedResult, error) {
	if err := s.cli.SyncHeaders(ctx, s.c.light); err != nil {
		return nil, err
	}
	ver := &core.Verifier{Acc: s.c.sys.acc, Light: s.c.light, Workers: s.c.sys.cfg.VerifyWorkers}
	return s.cli.QueryVerifiedDegraded(ctx, q, batched, ver)
}

// Reconnects reports how many times the connection transparently
// re-dialed after a transport failure.
func (s *SPClient) Reconnects() int { return s.cli.Reconnects() }

// Retries reports how many idempotent-request retries were made.
func (s *SPClient) Retries() int { return s.cli.Retries() }

// Subscribe registers a continuous query at the SP and returns a
// stream of locally verified publications: read RemoteStream.C until
// it closes; Close to unsubscribe. Tampered publications surface as
// Delivery.Err wrapping ErrSoundness/ErrCompleteness and are never
// delivered as results.
func (s *SPClient) Subscribe(q Query) (*RemoteStream, error) {
	return s.cli.Subscribe(q, service.SubscribeConfig{
		Acc:           s.c.sys.acc,
		Light:         s.c.light,
		VerifyWorkers: s.c.sys.cfg.VerifyWorkers,
	})
}

// Stats fetches the SP's proof-engine counters.
func (s *SPClient) Stats() (ProofStats, error) { return s.cli.Stats(context.Background()) }

// Close disconnects (ending every subscription stream).
func (s *SPClient) Close() error { return s.cli.Close() }
