package vchain

import (
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// LightClient is the query user: it stores block headers only and
// verifies SP answers against them. A nil error from Verify certifies
// that the returned objects are exactly the correct result set
// (soundness and completeness, §3).
type LightClient struct {
	sys   *System
	light *chain.LightStore
}

// NewLightClient creates an empty light client for this system.
func (s *System) NewLightClient() *LightClient {
	return &LightClient{
		sys:   s,
		light: chain.NewLightStore(chain.Difficulty(s.cfg.Difficulty)),
	}
}

// SyncHeaders ingests headers, validating linkage and proof-of-work.
func (c *LightClient) SyncHeaders(headers []Header) error {
	return c.light.Sync(headers)
}

// Height returns the number of synced headers.
func (c *LightClient) Height() int { return c.light.Height() }

// StorageBits reports the client's header storage in bits (the light
// node cost metric of Table 1).
func (c *LightClient) StorageBits() int { return c.light.SizeBits() }

// WindowByTime resolves a timestamp window [ts, te] to block heights
// against the client's own headers (never trusting the SP's mapping).
// ok is false when no synced block falls inside the window.
func (c *LightClient) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return c.light.WindowByTime(ts, te)
}

// Verify checks a time-window VO and returns the verified result set.
// It runs the batched verification engine: a structural walk collects
// every disjointness check, then one randomized pairing-product batch
// resolves them across all cores — several times faster than checking
// each proof's pairings individually, with identical accept/reject
// behavior.
func (c *LightClient) Verify(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Workers: c.sys.cfg.VerifyWorkers}
	return v.VerifyTimeWindow(q, vo)
}

// VerifySequential checks a VO with the paper's baseline verifier: two
// pairings per disjointness proof, resolved in walk order. It accepts
// and rejects exactly the same VOs as Verify; it exists for
// differential testing and as the batched engine's benchmark baseline.
func (c *LightClient) VerifySequential(q Query, vo *VO) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Sequential: true}
	return v.VerifyTimeWindow(q, vo)
}

// VerifyPublication checks a subscription delivery for query q.
func (c *LightClient) VerifyPublication(q Query, pub *Publication) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light}
	return subscribe.VerifyPublication(v, q, pub)
}

// VOSize reports a VO's transfer size in bytes (the paper's VO-size
// metric; result payloads excluded).
func (c *LightClient) VOSize(vo *VO) int { return vo.SizeBytes(c.sys.acc) }
