module github.com/vchain-go/vchain

go 1.24
