package vchain

import (
	"errors"
	"testing"
)

// TestFacadeDegradedReads exercises the public fault-tolerance surface
// end to end: quarantine a shard, get a verified partial answer (local
// and over the wire) with the shard's range as the gap, restart the
// shard, and get the full answer again.
func TestFacadeDegradedReads(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewShardedNode(2)
	defer node.Close()
	// Default band is 8: shard 0 owns heights 0-7, shard 1 owns 8-11.
	for i := 0; i < 12; i++ {
		if _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 11, Bool: And(Or("sedan")), Width: 4}

	if err := node.Quarantine(1, errors.New("test: fenced")); err != nil {
		t.Fatal(err)
	}
	if got := node.Health(1); got != ShardQuarantined {
		t.Fatalf("health = %v, want quarantined", got)
	}
	// Strict queries touching the shard fail typed...
	if _, err := node.TimeWindow(q); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("strict query err = %v, want ErrShardUnavailable", err)
	}
	// ...degraded ones return the provable parts plus the shard's
	// range as the gap, and the pair verifies.
	parts, gaps, err := node.TimeWindowDegraded(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 1 || gaps[0] != (Gap{Start: 8, End: 11}) {
		t.Fatalf("gaps = %v, want [[8,11]]", gaps)
	}
	res, err := client.VerifyDegraded(q, parts, gaps)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("verify err = %v, want ErrDegraded", err)
	}
	if res.Covered() != 8 || len(res.Objects) != 8 {
		t.Fatalf("covered %d blocks, %d objects; want 8 and 8", res.Covered(), len(res.Objects))
	}

	// The same degraded answer flows over the wire.
	sp, err := node.Serve("127.0.0.1:0", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cli, err := client.DialSP(sp.Addr(), SPOptions{RetryAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	wres, err := cli.QueryDegraded(q, false)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("remote degraded err = %v, want ErrDegraded", err)
	}
	if wres.Covered() != 8 || len(wres.Gaps) != 1 {
		t.Fatalf("remote degraded result: covered %d, gaps %v", wres.Covered(), wres.Gaps)
	}

	// Restart heals the shard; full strict answers resume.
	if err := node.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	if got := node.Health(1); got != ShardHealthy {
		t.Fatalf("post-restart health = %v, want healthy", got)
	}
	results, err := cli.Query(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 {
		t.Fatalf("post-recovery results %d, want 12", len(results))
	}
	ss := node.ShardStats()
	if len(ss) != 2 || ss[1].Restarts != 1 || ss[1].BreakerTrips != 1 {
		t.Fatalf("shard stats = %+v, want 1 restart and 1 trip on shard 1", ss)
	}
}
