// Benchmarks regenerating the vChain paper's evaluation, one per table
// and figure (§9 + Appendix D). Each benchmark measures the experiment's
// inner operation (one block built, one query answered, one block of
// subscriptions processed) so `go test -bench` output can be compared
// across schemes the same way the paper's plots are: who wins and by
// what factor. Full parameter sweeps — the actual table/figure series —
// are produced by `go run ./cmd/vchain-bench -exp <name>`.
//
// Mapping (see DESIGN.md §4 for details):
//
//	Table 1    → BenchmarkTable1SetupCost
//	Fig. 9–11  → BenchmarkTimeWindowQuery, BenchmarkTimeWindowVerify
//	Fig. 12    → BenchmarkSubscriptionIPTree
//	Fig. 13–15 → BenchmarkSubscriptionPeriod
//	Fig. 16    → BenchmarkMHTComparison
//	Fig. 17–19 → BenchmarkSelectivity
//	Fig. 20–22 → BenchmarkSkipListSize
package vchain_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/mhtree"
	"github.com/vchain-go/vchain/internal/subscribe"
	"github.com/vchain-go/vchain/internal/workload"
)

const (
	benchBlocks  = 16
	benchObjs    = 4
	benchSkip    = 2
	benchQueries = 2
)

// Shared fixtures: keygen and chain building are expensive, so each
// (dataset, acc, mode) configuration is built once per process.
var (
	fixtureMu sync.Mutex
	fixtures  = map[string]*benchFixture{}
	accsByKey = map[string]accumulator.Accumulator{}
)

type benchFixture struct {
	ds    *workload.Dataset
	acc   accumulator.Accumulator
	node  *core.FullNode
	light *chain.LightStore
}

func benchAcc(kind workload.Kind, accName string) accumulator.Accumulator {
	key := string(kind) + "/" + accName
	if acc, ok := accsByKey[key]; ok {
		return acc
	}
	pr := pairing.Toy()
	var acc accumulator.Accumulator
	if accName == "acc1" {
		acc = accumulator.KeyGenCon1Deterministic(pr, 4096, []byte(key))
	} else {
		q := 8192
		acc = accumulator.KeyGenCon2Deterministic(pr, q, accumulator.NewDictEncoder(q), []byte(key))
	}
	accsByKey[key] = acc
	return acc
}

func fixture(b *testing.B, kind workload.Kind, accName string, mode core.IndexMode, skipSize int) *benchFixture {
	b.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	key := fmt.Sprintf("%s/%s/%v/%d", kind, accName, mode, skipSize)
	if f, ok := fixtures[key]; ok {
		return f
	}
	ds, err := workload.Generate(workload.Config{Kind: kind, Blocks: benchBlocks, ObjectsPerBlock: benchObjs, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	acc := benchAcc(kind, accName)
	node := core.NewFullNode(0, &core.Builder{Acc: acc, Mode: mode, SkipSize: skipSize, Width: ds.Width})
	for i, blk := range ds.Blocks {
		if _, err := node.MineBlock(blk, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	light := chain.NewLightStore(0)
	if err := light.Sync(node.Store.Headers()); err != nil {
		b.Fatal(err)
	}
	f := &benchFixture{ds: ds, acc: acc, node: node, light: light}
	fixtures[key] = f
	return f
}

func benchQuery(f *benchFixture, seed int64) core.Query {
	q := f.ds.RandomQueries(1, workload.QueryConfig{Seed: seed})[0]
	q.StartBlock = 0
	q.EndBlock = f.node.Height() - 1
	return q
}

// BenchmarkTable1SetupCost measures per-block ADS construction (the T
// column of Table 1) for every dataset × index × accumulator.
func BenchmarkTable1SetupCost(b *testing.B) {
	for _, kind := range []workload.Kind{workload.FSQ, workload.WX, workload.ETH} {
		for _, accName := range []string{"acc1", "acc2"} {
			for _, mode := range []core.IndexMode{core.ModeNil, core.ModeIntra, core.ModeBoth} {
				name := fmt.Sprintf("%s/%s/%s", kind, accName, mode)
				b.Run(name, func(b *testing.B) {
					skip := 0
					if mode == core.ModeBoth {
						skip = benchSkip
					}
					f := fixture(b, kind, accName, mode, skip)
					builder := &core.Builder{Acc: f.acc, Mode: mode, SkipSize: skip, Width: f.ds.Width}
					objs := f.ds.Blocks[0]
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						// Rebuild the tip block's ADS against the live chain.
						if _, err := builder.BuildBlock(f.node.Height()-1, objs, f.node); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTimeWindowQuery measures SP CPU per query (Figs. 9–11, left
// panels) for the six schemes on each dataset.
func BenchmarkTimeWindowQuery(b *testing.B) {
	for _, kind := range []workload.Kind{workload.FSQ, workload.WX, workload.ETH} {
		for _, accName := range []string{"acc1", "acc2"} {
			for _, mode := range []core.IndexMode{core.ModeNil, core.ModeIntra, core.ModeBoth} {
				name := fmt.Sprintf("%s/%s/%s", kind, accName, mode)
				b.Run(name, func(b *testing.B) {
					skip := 0
					if mode == core.ModeBoth {
						skip = benchSkip
					}
					f := fixture(b, kind, accName, mode, skip)
					q := benchQuery(f, 7)
					sp := f.node.SP(false)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := sp.TimeWindowQuery(q); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTimeWindowVerify measures user CPU per query (Figs. 9–11,
// middle panels) and reports the VO size (right panels) as a metric.
func BenchmarkTimeWindowVerify(b *testing.B) {
	for _, accName := range []string{"acc1", "acc2"} {
		for _, mode := range []core.IndexMode{core.ModeIntra, core.ModeBoth} {
			name := fmt.Sprintf("%s/%s/%s", workload.FSQ, accName, mode)
			b.Run(name, func(b *testing.B) {
				skip := 0
				if mode == core.ModeBoth {
					skip = benchSkip
				}
				f := fixture(b, workload.FSQ, accName, mode, skip)
				q := benchQuery(f, 7)
				vo, err := f.node.SP(false).TimeWindowQuery(q)
				if err != nil {
					b.Fatal(err)
				}
				ver := &core.Verifier{Acc: f.acc, Light: f.light}
				b.ReportMetric(float64(vo.SizeBytes(f.acc)), "VO-bytes")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ver.VerifyTimeWindow(q, vo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkOnlineBatchVerification isolates §6.3: acc2 with and without
// batched mismatch proofs (the mechanism behind acc2's flat user CPU in
// Figs. 9–11).
func BenchmarkOnlineBatchVerification(b *testing.B) {
	f := fixture(b, workload.FSQ, "acc2", core.ModeIntra, 0)
	q := benchQuery(f, 7)
	for _, batched := range []bool{false, true} {
		name := "individual"
		if batched {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			vo, err := f.node.SP(batched).TimeWindowQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			ver := &core.Verifier{Acc: f.acc, Light: f.light}
			b.ReportMetric(float64(vo.SizeBytes(f.acc)), "VO-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ver.VerifyTimeWindow(q, vo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubscriptionIPTree measures per-block subscription
// processing with many registered queries, with and without the
// IP-tree (Fig. 12).
func BenchmarkSubscriptionIPTree(b *testing.B) {
	f := fixture(b, workload.FSQ, "acc2", core.ModeBoth, benchSkip)
	queries := f.ds.RandomQueries(8, workload.QueryConfig{Seed: 13})
	for _, useIP := range []bool{false, true} {
		name := "nip"
		if useIP {
			name = "ip"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := subscribe.NewEngine(f.acc, subscribe.Options{
					UseIPTree: useIP, Dims: f.ds.Dims, Width: f.ds.Width,
				})
				for _, q := range queries {
					if _, err := eng.Register(q); err != nil {
						b.Fatal(err)
					}
				}
				for h := 0; h < 4; h++ {
					ads, err := f.node.ADSAt(h)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.ProcessBlock(ads, f.node); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSubscriptionPeriod measures the realtime vs lazy schemes of
// Figs. 13–15 over a fixed period.
func BenchmarkSubscriptionPeriod(b *testing.B) {
	for _, scheme := range []struct {
		name    string
		accName string
		lazy    bool
	}{
		{"realtime-acc1", "acc1", false},
		{"realtime-acc2", "acc2", false},
		{"lazy-acc2", "acc2", true},
	} {
		b.Run(scheme.name, func(b *testing.B) {
			f := fixture(b, workload.ETH, scheme.accName, core.ModeBoth, benchSkip)
			queries := f.ds.RandomQueries(benchQueries, workload.QueryConfig{Seed: 17})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := subscribe.NewEngine(f.acc, subscribe.Options{
					Lazy: scheme.lazy, UseIPTree: true, Dims: f.ds.Dims, Width: f.ds.Width,
				})
				ids := make([]int, len(queries))
				for j, q := range queries {
					id, err := eng.Register(q)
					if err != nil {
						b.Fatal(err)
					}
					ids[j] = id
				}
				for h := 0; h < 8; h++ {
					ads, err := f.node.ADSAt(h)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.ProcessBlock(ads, f.node); err != nil {
						b.Fatal(err)
					}
				}
				for _, id := range ids {
					eng.Deregister(id)
				}
			}
		})
	}
}

// BenchmarkMHTComparison contrasts accumulator ADS construction with
// the exponential multi-attribute MHT baseline (Fig. 16).
func BenchmarkMHTComparison(b *testing.B) {
	pr := pairing.Toy()
	for _, dim := range []int{1, 3, 5, 7} {
		rows := make([][]int64, benchObjs)
		objs := make([]chain.Object, benchObjs)
		for i := range rows {
			rows[i] = make([]int64, dim)
			for d := range rows[i] {
				rows[i][d] = int64((i*31 + d*17) % 256)
			}
			objs[i] = chain.Object{ID: chain.ObjectID(i + 1), TS: 1, V: rows[i]}
		}
		b.Run(fmt.Sprintf("acc2/dim=%d", dim), func(b *testing.B) {
			acc := accumulator.KeyGenCon2Deterministic(pr, 8192, accumulator.NewDictEncoder(8192), []byte("mht"))
			builder := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: 8}
			node := core.NewFullNode(0, builder)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := builder.BuildBlock(0, objs, node); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mht/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mhtree.BuildMultiAttr(rows)
			}
		})
	}
}

// BenchmarkSelectivity sweeps the range selectivity (Figs. 17–19).
func BenchmarkSelectivity(b *testing.B) {
	f := fixture(b, workload.ETH, "acc2", core.ModeBoth, benchSkip)
	for _, sel := range []float64{0.1, 0.3, 0.5} {
		b.Run(fmt.Sprintf("sel=%.0f%%", sel*100), func(b *testing.B) {
			q := f.ds.RandomQueries(1, workload.QueryConfig{Selectivity: sel, Seed: 23})[0]
			q.StartBlock, q.EndBlock = 0, f.node.Height()-1
			sp := f.node.SP(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.TimeWindowQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSkipListSize sweeps the skip-list size (Figs. 20–22).
func BenchmarkSkipListSize(b *testing.B) {
	for _, size := range []int{0, 1, 3} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			mode := core.ModeBoth
			if size == 0 {
				mode = core.ModeIntra
			}
			f := fixture(b, workload.ETH, "acc2", mode, size)
			q := benchQuery(f, 29)
			sp := f.node.SP(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.TimeWindowQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusteringAblation quantifies the Alg. 2 Jaccard clustering
// heuristic (a DESIGN.md design choice): query cost over an index built
// with clustering vs positional pairing.
func BenchmarkClusteringAblation(b *testing.B) {
	acc := benchAcc(workload.FSQ, "acc2")
	ds, err := workload.Generate(workload.Config{Kind: workload.FSQ, Blocks: 8, ObjectsPerBlock: 6, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, noCluster := range []bool{false, true} {
		name := "jaccard"
		if noCluster {
			name = "positional"
		}
		b.Run(name, func(b *testing.B) {
			builder := &core.Builder{Acc: acc, Mode: core.ModeIntra, Width: ds.Width, NoCluster: noCluster}
			node := core.NewFullNode(0, builder)
			for i, blk := range ds.Blocks {
				if _, err := node.MineBlock(blk, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			q := ds.RandomQueries(1, workload.QueryConfig{Seed: 31})[0]
			q.StartBlock, q.EndBlock = 0, node.Height()-1
			sp := node.SP(false)
			vo, err := sp.TimeWindowQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(vo.SizeBytes(acc)), "VO-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.TimeWindowQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPParallelism measures the proof-worker pool (the paper's SP
// runs 24 threads; this host has one core, so the interesting output is
// that correctness holds and overhead is bounded).
func BenchmarkSPParallelism(b *testing.B) {
	f := fixture(b, workload.FSQ, "acc2", core.ModeIntra, 0)
	q := benchQuery(f, 7)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sp := f.node.SPWith(false, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sp.TimeWindowQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccumulatorPrimitives profiles the cryptographic core that
// every experiment above is built from.
func BenchmarkAccumulatorPrimitives(b *testing.B) {
	pr := pairing.Toy()
	acc1 := accumulator.KeyGenCon1Deterministic(pr, 256, []byte("prim"))
	acc2 := accumulator.KeyGenCon2Deterministic(pr, 512, accumulator.HashEncoder{Q: 512}, []byte("prim"))
	w := multisetOf("sedan", "benz", "van", "audi", "bmw", "suv", "coupe", "truck")
	clause := multisetOf("tesla")
	for _, tc := range []struct {
		name string
		acc  accumulator.Accumulator
	}{{"acc1", acc1}, {"acc2", acc2}} {
		b.Run(tc.name+"/Setup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.acc.Setup(w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/ProveDisjoint", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tc.acc.ProveDisjoint(w, clause); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/VerifyDisjoint", func(b *testing.B) {
			aw, _ := tc.acc.Setup(w)
			ac, _ := tc.acc.Setup(clause)
			pf, err := tc.acc.ProveDisjoint(w, clause)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !tc.acc.VerifyDisjoint(aw, ac, pf) {
					b.Fatal("proof rejected")
				}
			}
		})
	}
}

func multisetOf(elems ...string) map[string]int {
	m := map[string]int{}
	for _, e := range elems {
		m[e]++
	}
	return m
}
