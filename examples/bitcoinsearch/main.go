// Bitcoin-style transaction search (Example 3.1 of the vChain paper).
//
// Each object is a coin-transfer transaction ⟨timestamp, amount,
// {addresses}⟩. A user asks for all transactions in a window with
// amount ≥ 10 that involve a specific sender AND a specific receiver —
// a conjunctive Boolean range query — and verifies the answer against
// the untrusted SP, including an adversarial demonstration where the
// SP drops a result and is caught.
//
// Run with: go run ./examples/bitcoinsearch
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	vchain "github.com/vchain-go/vchain"
)

func main() {
	sys, err := vchain.NewSystem(vchain.Config{
		Preset:   "toy",
		BitWidth: 10, // amounts in [0, 1023]
		Capacity: 2048,
		Seed:     []byte("bitcoinsearch"),
	})
	if err != nil {
		log.Fatal(err)
	}
	node := sys.NewFullNode()

	// Synthesize a small transaction history. Address "send:1FFYc" pays
	// "recv:2DAAf" occasionally; background traffic fills the blocks.
	rng := rand.New(rand.NewSource(7))
	id := uint64(1)
	interesting := 0
	for blk := 0; blk < 12; blk++ {
		var txs []vchain.Object
		for i := 0; i < 4; i++ {
			amount := int64(rng.Intn(1000))
			from := fmt.Sprintf("send:%04x", rng.Intn(64))
			to := fmt.Sprintf("recv:%04x", rng.Intn(64))
			if blk%4 == 1 && i == 0 {
				from, to = "send:1FFYc", "recv:2DAAf"
				amount = int64(10 + rng.Intn(500)) // always ≥ 10
				interesting++
			}
			txs = append(txs, vchain.Object{
				ID: vchain.ObjectID(id), TS: int64(blk), V: []int64{amount}, W: []string{from, to},
			})
			id++
		}
		if _, _, err := node.Mine(txs, int64(blk)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("chain: %d blocks, %d planted matches\n", node.Height(), interesting)

	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		log.Fatal(err)
	}

	// “amount ≥ 10 ∧ send:1FFYc ∧ recv:2DAAf” over the whole window.
	q := vchain.Query{
		StartBlock: 0,
		EndBlock:   node.Height() - 1,
		Range:      &vchain.RangeCond{Lo: []int64{10}, Hi: []int64{1023}},
		Bool:       vchain.And(vchain.Or("send:1FFYc"), vchain.Or("recv:2DAAf")),
		Width:      10,
	}
	vo, err := node.TimeWindow(q)
	if err != nil {
		log.Fatal(err)
	}
	results, err := client.Verify(q, vo)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("verified %d matching transactions (VO %d bytes):\n", len(results), client.VOSize(vo))
	for _, tx := range results {
		fmt.Printf("  block %d: amount=%d %v\n", tx.TS, tx.V[0], tx.W)
	}

	// Adversarial SP: silently truncate the VO to hide recent matches.
	fmt.Println("\nsimulating a cheating SP that omits the latest blocks...")
	vo2, _ := node.TimeWindow(q)
	vo2.Blocks = vo2.Blocks[1:] // drop the newest block's proof
	if _, err := client.Verify(q, vo2); err != nil {
		fmt.Printf("caught: %v\n", err)
		if errors.Is(err, vchain.ErrCompleteness) {
			fmt.Println("(flagged as a completeness violation, as expected)")
		}
	} else {
		log.Fatal("BUG: the tampered VO was accepted")
	}
}
