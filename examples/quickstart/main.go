// Quickstart: the smallest end-to-end vChain flow.
//
// A miner appends blocks carrying the accumulator ADS, a light client
// syncs only the headers, and a time-window Boolean range query is
// answered by the (untrusted) full node with a verification object the
// client checks locally.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vchain "github.com/vchain-go/vchain"
)

func main() {
	// One System is shared by all roles: it holds the pairing
	// parameters and the accumulator public key. The "toy" preset keeps
	// this demo instant; use "default" for real deployments.
	sys, err := vchain.NewSystem(vchain.Config{
		Preset:   "toy",
		BitWidth: 8,
		Capacity: 1024,
		Seed:     []byte("quickstart"), // deterministic demo key
	})
	if err != nil {
		log.Fatal(err)
	}

	// The full node mines blocks of temporal objects ⟨t, V, W⟩.
	node := sys.NewFullNode()
	for i := 0; i < 4; i++ {
		objs := []vchain.Object{
			{ID: vchain.ObjectID(i*10 + 1), TS: int64(i), V: []int64{int64(20 + i)}, W: []string{"sedan", "benz"}},
			{ID: vchain.ObjectID(i*10 + 2), TS: int64(i), V: []int64{int64(90 + i)}, W: []string{"van", "audi"}},
		}
		if _, _, err := node.Mine(objs, int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("mined %d blocks\n", node.Height())

	// The light client stores headers only.
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("light client synced %d headers (%d bits)\n", client.Height(), client.StorageBits())

	// Query: price ∈ [0, 50] AND "sedan" over blocks [0, 3].
	q := vchain.Query{
		StartBlock: 0,
		EndBlock:   3,
		Range:      &vchain.RangeCond{Lo: []int64{0}, Hi: []int64{50}},
		Bool:       vchain.And(vchain.Or("sedan")),
		Width:      8,
	}
	vo, err := node.TimeWindow(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VO size: %d bytes\n", client.VOSize(vo))

	// Verification certifies soundness AND completeness: a nil error
	// means these are exactly the matching objects, untampered.
	results, err := client.Verify(q, vo)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("verified %d results:\n", len(results))
	for _, o := range results {
		fmt.Printf("  %v\n", o)
	}
}
