// Logical chain construction (Appendix E of the vChain paper).
//
// The paper sketches a Solidity contract, BuildvChain, that maintains a
// vChain-style logical chain — block headers with intra- and
// inter-block index roots — on top of an existing blockchain. This
// example mirrors that construction in Go: a "contract" struct keeps a
// chainstorage map from block hash to logical block, building each
// header from the ADS roots exactly as Listing 1 does, while the
// underlying consensus chain stays untouched.
//
// Run with: go run ./examples/logicalchain
package main

import (
	"crypto/sha256"
	"fmt"
	"log"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
)

// logicalHeader mirrors the contract's BlockHeader struct.
type logicalHeader struct {
	PreBkHash    chain.Digest
	MerkleRoot   chain.Digest
	SkipListRoot chain.Digest
}

func (h logicalHeader) hash() chain.Digest {
	buf := append([]byte{}, h.PreBkHash[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = append(buf, h.SkipListRoot[:]...)
	return sha256.Sum256(buf)
}

// logicalBlock mirrors the contract's Block struct.
type logicalBlock struct {
	header  logicalHeader
	ads     *core.BlockADS
	objects []chain.Object
}

// vChainContract mirrors Listing 1: chainstorage maps block hash →
// block; BuildvChain appends a logical block.
type vChainContract struct {
	acc          accumulator.Accumulator
	builder      *core.Builder
	chainstorage map[chain.Digest]*logicalBlock
	byHeight     []*logicalBlock // height index (the contract iterates storage)
}

// ADSAt / HeaderAt implement core.ChainView over the logical chain so
// the builder can aggregate skip entries. The contract keeps every ADS
// in its storage map, so lookups can never fail.
func (c *vChainContract) ADSAt(height int) (*core.BlockADS, error) {
	if height < 0 || height >= len(c.byHeight) {
		return nil, nil
	}
	return c.byHeight[height].ads, nil
}

func (c *vChainContract) HeaderAt(height int) (chain.Header, error) {
	if height < 0 || height >= len(c.byHeight) {
		return chain.Header{}, fmt.Errorf("no logical block at %d", height)
	}
	lb := c.byHeight[height]
	// Present the logical header in the substrate's header shape: only
	// the hash linkage matters to skip entries.
	return chain.Header{
		Height:       uint64(height),
		PrevHash:     lb.header.PreBkHash,
		MerkleRoot:   lb.header.MerkleRoot,
		SkipListRoot: lb.header.SkipListRoot,
	}, nil
}

// BuildvChain is Listing 1's function: build the indexes, assemble the
// header, store the block under its hash.
func (c *vChainContract) BuildvChain(objects []chain.Object, preBkHash chain.Digest) (chain.Digest, error) {
	height := len(c.byHeight)
	ads, err := c.builder.BuildBlock(height, objects, c)
	if err != nil {
		return chain.Digest{}, err
	}
	header := logicalHeader{
		PreBkHash:    preBkHash,
		MerkleRoot:   ads.MerkleRoot(),
		SkipListRoot: ads.SkipListRoot(c.acc),
	}
	blk := &logicalBlock{header: header, ads: ads, objects: objects}
	h := header.hash()
	c.chainstorage[h] = blk
	c.byHeight = append(c.byHeight, blk)
	return h, nil
}

func main() {
	pr := pairing.ByName("toy")
	acc := accumulator.KeyGenCon2Deterministic(pr, 1024, accumulator.HashEncoder{Q: 1024}, []byte("logicalchain"))
	contract := &vChainContract{
		acc:          acc,
		builder:      &core.Builder{Acc: acc, Mode: core.ModeBoth, SkipSize: 2, Width: 8},
		chainstorage: map[chain.Digest]*logicalBlock{},
	}

	prev := chain.Digest{} // genesis PreBkHash
	for i := 0; i < 6; i++ {
		objs := []chain.Object{
			{ID: chain.ObjectID(i*2 + 1), TS: int64(i), V: []int64{int64(10 * i)}, W: []string{"patent", "blockchain", "query"}},
			{ID: chain.ObjectID(i*2 + 2), TS: int64(i), V: []int64{int64(10*i + 5)}, W: []string{"patent", "storage"}},
		}
		h, err := contract.BuildvChain(objs, prev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("logical block %d stored under %x (ADS %d bytes)\n",
			i, h[:8], contract.byHeight[i].ads.SizeBytes(acc))
		prev = h
	}

	// The logical chain supports the same verifiable queries: search
	// “blockchain” ∧ (“query” ∨ “search”) as in the paper's patent
	// example (§1), over the logical blocks.
	sp := &core.SP{Acc: acc, View: contract}
	cnf := core.CNF{core.KeywordClause("blockchain"), core.KeywordClause("query", "search")}
	matches := 0
	for i := range contract.byHeight {
		ads, _ := contract.ADSAt(i)
		tree, err := sp.BlockTreeVO(ads, cnf)
		if err != nil {
			log.Fatal(err)
		}
		vo := &core.VO{Blocks: []core.BlockVO{{Height: i, Tree: tree}}}
		matches += len(vo.Results())
	}
	fmt.Printf("patent search found %d matches across the logical chain\n", matches)
}
