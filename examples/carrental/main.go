// Car-rental subscription queries (Example 3.2 of the vChain paper).
//
// A user subscribes to q = ⟨−, [200, 250], "Sedan" ∧ ("Benz" ∨ "BMW")⟩:
// every future rental offer priced 200–250 that is a Benz or BMW sedan
// must be delivered — verifiably. The demo runs two subscribers (one
// real-time, one lazy) against the same feed and shows the lazy one
// receiving aggregated multi-block publications.
//
// Run with: go run ./examples/carrental
package main

import (
	"fmt"
	"log"
	"math/rand"

	vchain "github.com/vchain-go/vchain"
)

func main() {
	sys, err := vchain.NewSystem(vchain.Config{
		Preset:   "toy",
		BitWidth: 9, // prices in [0, 511]
		Capacity: 2048,
		Seed:     []byte("carrental"),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two independent full nodes simulate two SPs with different
	// publication policies over identical chains.
	realtime := sys.NewFullNode()
	lazy := sys.NewFullNode()

	q := vchain.Query{
		Range: &vchain.RangeCond{Lo: []int64{200}, Hi: []int64{250}},
		Bool:  vchain.And(vchain.Or("sedan"), vchain.Or("benz", "bmw")),
		Width: 9,
	}
	if _, err := realtime.Subscribe(q, vchain.SubscribeOptions{UseIPTree: true, Dims: 1}); err != nil {
		log.Fatal(err)
	}
	lazyID, err := lazy.Subscribe(q, vchain.SubscribeOptions{UseIPTree: true, Lazy: true, Dims: 1})
	if err != nil {
		log.Fatal(err)
	}

	makes := []string{"benz", "bmw", "audi", "toyota"}
	bodies := []string{"sedan", "van", "suv"}
	rng := rand.New(rand.NewSource(99))
	id := uint64(1)
	var rtPubs, lzPubs []vchain.Publication
	for blk := 0; blk < 10; blk++ {
		var offers []vchain.Object
		for i := 0; i < 3; i++ {
			price := int64(150 + rng.Intn(200))
			offers = append(offers, vchain.Object{
				ID: vchain.ObjectID(id), TS: int64(blk),
				V: []int64{price},
				W: []string{bodies[rng.Intn(len(bodies))], makes[rng.Intn(len(makes))]},
			})
			id++
		}
		if blk == 6 { // plant a guaranteed hit
			offers = append(offers, vchain.Object{
				ID: vchain.ObjectID(id), TS: int64(blk), V: []int64{225}, W: []string{"sedan", "benz"},
			})
			id++
		}
		_, p1, err := realtime.Mine(offers, int64(blk))
		if err != nil {
			log.Fatal(err)
		}
		rtPubs = append(rtPubs, p1...)
		_, p2, err := lazy.Mine(offers, int64(blk))
		if err != nil {
			log.Fatal(err)
		}
		lzPubs = append(lzPubs, p2...)
	}
	if pub := lazy.Unsubscribe(lazyID); pub != nil {
		lzPubs = append(lzPubs, *pub) // final pending span
	}

	verify := func(name string, node *vchain.FullNode, pubs []vchain.Publication) {
		client := sys.NewLightClient()
		if err := client.SyncHeaders(node.Headers()); err != nil {
			log.Fatal(err)
		}
		total, voBytes := 0, 0
		for i := range pubs {
			objs, err := client.VerifyPublication(q, &pubs[i])
			if err != nil {
				log.Fatalf("%s: publication [%d,%d] failed: %v", name, pubs[i].From, pubs[i].To, err)
			}
			total += len(objs)
			voBytes += client.VOSize(pubs[i].VO)
			if len(objs) > 0 {
				for _, o := range objs {
					fmt.Printf("  %s subscriber got: block %d price=%d %v\n", name, o.TS, o.V[0], o.W)
				}
			}
		}
		fmt.Printf("%s: %d publications, %d verified results, %d VO bytes total\n\n",
			name, len(pubs), total, voBytes)
	}
	fmt.Println("real-time delivery (one publication per block):")
	verify("real-time", realtime, rtPubs)
	fmt.Println("lazy delivery (mismatching blocks aggregated until a hit):")
	verify("lazy", lazy, lzPubs)
}
