package vchain

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// ShardedNode is a miner/SP partitioned by height range across shard
// workers: each shard owns its own block store, proof engine, and
// decoded ADSs, and every shard engine draws from one shared proof
// worker budget (Config.SPWorkers split, not multiplied). Time-window
// queries fan out to the covering shards in parallel and come back as
// WindowParts whose union a light client settles in a single
// pairing-product batch (LightClient.VerifyParts) — the results are
// byte-identical to an unsharded node's.
type ShardedNode struct {
	sys      *System
	node     *shard.Node
	recovery *ShardRecovery

	// mu guards the attached service endpoint.
	mu  sync.Mutex
	srv *service.Server
}

// shardOptions maps the system configuration onto shard options.
func (s *System) shardOptions(shards int) shard.Options {
	return shard.Options{
		Shards:           shards,
		Workers:          s.cfg.SPWorkers,
		CacheSize:        s.cfg.ProofCacheSize,
		ADSCacheBlocks:   s.cfg.ADSCacheBlocks,
		FailureThreshold: s.cfg.ShardFailureThreshold,
		BreakerCooldown:  s.cfg.ShardBreakerCooldown,
	}
}

// NewShardedNode creates an in-memory sharded node (miner + SP) with
// the given shard count (values < 1 mean 1): nothing survives the
// process. Use OpenShardedNode for a node whose chain persists across
// restarts.
func (s *System) NewShardedNode(shards int) *ShardedNode {
	node := shard.New(chain.Difficulty(s.cfg.Difficulty), s.builder(), s.shardOptions(shards))
	return &ShardedNode{sys: s, node: node}
}

// OpenShardedNode opens (or creates) a durable sharded node rooted at
// dir: one crash-safe segmented-log subdirectory per shard (each with
// its own flock and torn-tail recovery) plus a topology record fixing
// the partitioning. Reopening replays heights in order across the
// shards; a shard whose tail was lost to a crash bounds the restored
// chain and the other shards truncate their stranded records, so
// mining resumes from a mutually consistent state. Passing shards <= 0
// adopts the directory's recorded shard count; a conflicting explicit
// count is an error. Inspect Recovery for the per-shard outcome. Call
// Close when done with the node.
func (s *System) OpenShardedNode(dir string, shards int) (*ShardedNode, error) {
	node, report, err := shard.Open(chain.Difficulty(s.cfg.Difficulty), s.builder(), dir, s.shardOptions(shards))
	if err != nil {
		return nil, fmt.Errorf("vchain: opening sharded block store: %w", err)
	}
	return &ShardedNode{sys: s, node: node, recovery: report}, nil
}

// Recovery returns the reopen report (nil for in-memory nodes): chain
// length restored plus each shard's torn-tail and stranded-record
// counts.
func (n *ShardedNode) Recovery() *ShardRecovery { return n.recovery }

// Close releases every shard's block store. The node must not be used
// afterwards.
func (n *ShardedNode) Close() error { return n.node.Close() }

// Mine appends a block of objects with the given timestamp: the block
// commits atomically to its owning shard. Remote subscribers (via
// Serve) are fanned out to on this path.
func (n *ShardedNode) Mine(objs []Object, ts int64) (*Block, error) {
	blk, err := n.node.MineBlock(objs, ts)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	srv := n.srv
	n.mu.Unlock()
	if srv != nil {
		if err := srv.ProcessBlock(int(blk.Header.Height)); err != nil {
			return nil, fmt.Errorf("vchain: remote subscriptions: %w", err)
		}
	}
	return blk, nil
}

// Height returns the chain height.
func (n *ShardedNode) Height() int { return n.node.Height() }

// Shards returns the shard count.
func (n *ShardedNode) Shards() int { return n.node.Shards() }

// Headers returns all block headers (what light clients sync).
func (n *ShardedNode) Headers() []Header { return n.node.Headers() }

// BlockAt returns a block by height.
func (n *ShardedNode) BlockAt(height int) (*Block, error) { return n.node.Store().BlockAt(height) }

// TimeWindow answers a time-window query by scatter-gather across the
// covering shards, returning the per-shard window parts (descending,
// tiling the window). Verify with LightClient.VerifyParts; results are
// embedded (WindowPart.VO.Results()).
func (n *ShardedNode) TimeWindow(q Query) ([]WindowPart, error) {
	return n.node.TimeWindowParts(context.Background(), q, false)
}

// TimeWindowBatched is TimeWindow with online batch verification
// (§6.3) enabled per shard.
func (n *ShardedNode) TimeWindowBatched(q Query) ([]WindowPart, error) {
	return n.node.TimeWindowParts(context.Background(), q, true)
}

// TimeWindowDegraded answers a time-window query in degraded-read
// mode: sub-windows owned by quarantined (or mid-query failing) shards
// come back as machine-readable Gaps instead of failing the whole
// query. Parts and gaps together tile the window, descending; verify
// the pair with LightClient.VerifyDegraded.
func (n *ShardedNode) TimeWindowDegraded(q Query) ([]WindowPart, []Gap, error) {
	return n.node.TimeWindowDegraded(context.Background(), q, false)
}

// Health reports one shard's current health state.
func (n *ShardedNode) Health(shardIdx int) ShardHealth { return n.node.Health(shardIdx) }

// Quarantine trips one shard's circuit breaker by hand (operational
// fencing: e.g. its disk is known-bad). Strict queries touching the
// shard fail with ErrShardUnavailable; degraded reads gap it out. The
// supervisor (or RestartShard) brings it back.
func (n *ShardedNode) Quarantine(shardIdx int, reason error) error {
	return n.node.Quarantine(shardIdx, reason)
}

// RestartShard re-opens one quarantined shard from its durable log:
// torn-tail recovery, surplus-record truncation, and a full header
// re-verification of every restored block against the chain index. On
// success the shard is healthy and serving again.
func (n *ShardedNode) RestartShard(shardIdx int) error { return n.node.RestartShard(shardIdx) }

// Supervise starts the shard supervisor: every interval it scans for
// quarantined shards past their breaker cooldown and restarts them
// from their logs. It returns a stop function; call it before Close.
func (n *ShardedNode) Supervise(interval time.Duration) (stop func()) {
	return n.node.Supervise(interval)
}

// WindowByTime resolves a timestamp window [ts, te] to block heights.
func (n *ShardedNode) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return n.node.WindowByTime(ts, te)
}

// ProofStats aggregates proof-engine counters across every shard (plus
// the router engine serving subscriptions).
func (n *ShardedNode) ProofStats() ProofStats { return n.node.ProofStats() }

// ShardStats snapshots each shard's operational state, in shard
// order: health, proof counters, and failure/restart/breaker totals.
func (n *ShardedNode) ShardStats() []ShardStat { return n.node.ShardStats() }

// Serve exposes this node over TCP at addr ("127.0.0.1:0" picks a
// port): remote light clients sync headers, run verifiable queries
// (answered as window parts that verify in one batch), and register
// streaming subscriptions whose publications are sourced from the
// owning shard. A node serves at most one endpoint at a time.
func (n *ShardedNode) Serve(addr string, opts SubscribeOptions) (*RemoteSP, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		return nil, fmt.Errorf("vchain: node already serving")
	}
	o := opts.normalize()
	srv := service.NewServer(n.node, service.ServerConfig{
		Subscriptions: subscribe.Options{
			UseIPTree:     o.UseIPTree,
			Lazy:          o.Lazy,
			LazyThreshold: o.LazyThreshold,
			Dims:          o.Dims,
			Width:         n.sys.cfg.BitWidth,
			Proofs:        n.node.ProofEngine(),
		},
	})
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	detach := func() {
		n.mu.Lock()
		if n.srv == srv {
			n.srv = nil
		}
		n.mu.Unlock()
	}
	return &RemoteSP{srv: srv, addr: bound, detach: detach}, nil
}

// Core exposes the internal sharded node (service layer, benchmarks).
func (n *ShardedNode) Core() *shard.Node { return n.node }

// VerifyParts checks a scatter-gathered time-window answer — the parts
// must tile the query window — and returns the verified result set.
// Every shard's pending pairing checks resolve together in one
// randomized pairing-product batch, so cross-shard verification costs
// one final batch, not one per shard. A nil error certifies soundness
// and completeness, exactly as Verify does for a single VO.
func (c *LightClient) VerifyParts(q Query, parts []WindowPart) ([]Object, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Workers: c.sys.cfg.VerifyWorkers}
	return v.VerifyWindowParts(q, parts)
}

// VerifyDegraded checks a degraded time-window answer: the parts must
// verify cryptographically AND, together with the declared gaps, tile
// the query window exactly — a gap can neither hide a covered height
// nor smuggle one in twice. When gaps are present the verified result
// comes back alongside ErrDegraded, so a partial answer is never
// mistaken for a complete one; with no gaps the behavior (and result)
// is exactly VerifyParts.
func (c *LightClient) VerifyDegraded(q Query, parts []WindowPart, gaps []Gap) (*DegradedResult, error) {
	v := &core.Verifier{Acc: c.sys.acc, Light: c.light, Workers: c.sys.cfg.VerifyWorkers}
	return v.VerifyDegraded(q, parts, gaps)
}
