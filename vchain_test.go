package vchain

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testSystem(t testing.TB, accName string, mode IndexMode) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Preset:       "toy",
		Accumulator:  accName,
		Index:        mode,
		SkipListSize: 2,
		BitWidth:     4,
		Capacity:     512,
		Difficulty:   1,
		Seed:         []byte("facade-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func carBlock(i int) []Object {
	base := uint64(i * 10)
	return []Object{
		{ID: ObjectID(base + 1), TS: int64(i), V: []int64{4}, W: []string{"sedan", "benz"}},
		{ID: ObjectID(base + 2), TS: int64(i), V: []int64{9}, W: []string{"van", "audi"}},
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	for _, accName := range []string{"acc1", "acc2"} {
		t.Run(accName, func(t *testing.T) {
			sys := testSystem(t, accName, IndexBoth)
			node := sys.NewFullNode()
			for i := 0; i < 3; i++ {
				if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			client := sys.NewLightClient()
			if err := client.SyncHeaders(node.Headers()); err != nil {
				t.Fatal(err)
			}
			if client.Height() != 3 {
				t.Fatalf("client height %d", client.Height())
			}
			q := Query{
				StartBlock: 0, EndBlock: 2,
				Range: &RangeCond{Lo: []int64{0}, Hi: []int64{5}},
				Bool:  And(Or("sedan")),
				Width: 4,
			}
			vo, err := node.TimeWindow(q)
			if err != nil {
				t.Fatal(err)
			}
			results, err := client.Verify(q, vo)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 3 {
				t.Fatalf("results %d, want 3", len(results))
			}
			if client.VOSize(vo) <= 0 {
				t.Error("VO size should be positive")
			}
			if client.StorageBits() <= 0 {
				t.Error("light storage should be positive")
			}
		})
	}
}

func TestFacadeBatchedQuery(t *testing.T) {
	sys := testSystem(t, "acc2", IndexIntra)
	node := sys.NewFullNode()
	for i := 0; i < 3; i++ {
		if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 2, Bool: And(Or("tesla")), Width: 4}
	vo, err := node.TimeWindowBatched(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Verify(q, vo); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSubscription(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewFullNode()
	q := Query{Bool: And(Or("sedan")), Width: 4}
	id, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true, Dims: 1})
	if err != nil {
		t.Fatal(err)
	}
	var pubs []Publication
	for i := 0; i < 3; i++ {
		_, p, err := node.Mine(carBlock(i), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, p...)
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range pubs {
		objs, err := client.VerifyPublication(q, &pubs[i])
		if err != nil {
			t.Fatal(err)
		}
		total += len(objs)
	}
	if total != 3 {
		t.Fatalf("subscription results %d, want 3", total)
	}
	if pub := node.Unsubscribe(id); pub != nil {
		t.Error("no pending span expected in real-time mode")
	}
}

func TestFacadeRejectsTamperedVO(t *testing.T) {
	sys := testSystem(t, "acc2", IndexIntra)
	node := sys.NewFullNode()
	if _, _, err := node.Mine(carBlock(0), 0); err != nil {
		t.Fatal(err)
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 0, Bool: And(Or("sedan")), Width: 4}
	vo, err := node.TimeWindow(q)
	if err != nil {
		t.Fatal(err)
	}
	vo.Blocks = nil // SP returns an empty VO
	_, err = client.Verify(q, vo)
	if !errors.Is(err, ErrCompleteness) {
		t.Fatalf("want completeness violation, got %v", err)
	}
}

func TestFacadeTimestampWindow(t *testing.T) {
	sys := testSystem(t, "acc2", IndexIntra)
	node := sys.NewFullNode()
	// Blocks at timestamps 100, 110, 120.
	for i := 0; i < 3; i++ {
		if _, _, err := node.Mine(carBlock(i), int64(100+10*i)); err != nil {
			t.Fatal(err)
		}
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	// The paper's query form: a timestamp window resolved locally on
	// both sides.
	start, end, ok := client.WindowByTime(105, 125)
	if !ok || start != 1 || end != 2 {
		t.Fatalf("client window (%d,%d,%v)", start, end, ok)
	}
	s2, e2, ok2 := node.WindowByTime(105, 125)
	if !ok2 || s2 != start || e2 != end {
		t.Fatal("node and client disagree on the window")
	}
	q := Query{StartBlock: start, EndBlock: end, Bool: And(Or("sedan")), Width: 4}
	vo, err := node.TimeWindow(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := client.Verify(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d, want 2", len(results))
	}
	if _, _, ok := client.WindowByTime(500, 600); ok {
		t.Error("window beyond the chain should not resolve")
	}
}

func TestFacadeParallelSP(t *testing.T) {
	sys, err := NewSystem(Config{
		Preset: "toy", Index: IndexIntra, BitWidth: 4, Capacity: 512,
		Difficulty: 1, Seed: []byte("par"), SPWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := sys.NewFullNode()
	for i := 0; i < 3; i++ {
		if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 2, Bool: And(Or("sedan")), Width: 4}
	vo, err := node.TimeWindow(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Verify(q, vo); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Preset: "nope"}); err == nil {
		t.Error("bad preset accepted")
	}
	if _, err := NewSystem(Config{Preset: "toy", Accumulator: "acc3"}); err == nil {
		t.Error("bad accumulator accepted")
	}
	sys, err := NewSystem(Config{Preset: "toy", Seed: []byte("x"), Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Accumulator != "acc2" || cfg.Index != IndexBoth || cfg.BitWidth != 16 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if sys.Accumulator() == nil {
		t.Error("accumulator missing")
	}
}

// TestConfigIndexDefaulting covers the former silent-nil bug: setting
// only SkipListSize used to leave Index at the zero value (no indexes
// at all); the zero value now always means IndexBoth, and IndexNone is
// the explicit opt-out.
func TestConfigIndexDefaulting(t *testing.T) {
	sys, err := NewSystem(Config{Preset: "toy", SkipListSize: 2, Capacity: 64, Seed: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().Index; got != IndexBoth {
		t.Errorf("SkipListSize-only config got Index %v, want IndexBoth", got)
	}
	sys, err = NewSystem(Config{Preset: "toy", Index: IndexNone, Capacity: 64, Seed: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().Index; got != IndexNil {
		t.Errorf("IndexNone got Index %v, want the nil mode", got)
	}
	// An explicitly chosen mode is preserved.
	sys, err = NewSystem(Config{Preset: "toy", Index: IndexIntra, Capacity: 64, Seed: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().Index; got != IndexIntra {
		t.Errorf("explicit IndexIntra got %v", got)
	}
}

// TestSubscribeConflictingOptions covers the former silent-ignore bug:
// the engine is created from the first Subscribe call's options, so a
// later call with different options (e.g. Lazy vs eager) cannot be
// honored — it must fail loudly instead of pretending.
func TestSubscribeConflictingOptions(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewFullNode()
	q := Query{Bool: And(Or("sedan")), Width: 4}
	if _, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true}); err != nil {
		t.Fatal(err)
	}
	// Same options: fine.
	if _, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true}); err != nil {
		t.Fatalf("identical options rejected: %v", err)
	}
	// Defaulted fields compare by effective value, not raw zero.
	if _, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true, Dims: 1}); err != nil {
		t.Fatalf("equivalent options rejected: %v", err)
	}
	// Conflicting Lazy: loud error.
	if _, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true, Lazy: true}); err == nil {
		t.Fatal("conflicting Lazy option silently ignored")
	} else if !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Conflicting Dims: loud error.
	if _, err := node.Subscribe(q, SubscribeOptions{UseIPTree: true, Dims: 2}); err == nil {
		t.Fatal("conflicting Dims option silently ignored")
	}
}

// TestFacadeRemoteSubscription: the acceptance scenario over the
// facade — a light client connected over TCP registers a subscription
// and receives ≥3 publications across mined blocks, each locally
// verified before delivery.
func TestFacadeRemoteSubscription(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		t.Run(name, func(t *testing.T) {
			sys := testSystem(t, "acc2", IndexBoth)
			node := sys.NewFullNode()
			sp, err := node.Serve("127.0.0.1:0", SubscribeOptions{UseIPTree: true, Lazy: lazy})
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Close()

			client := sys.NewLightClient()
			conn, err := client.DialSP(sp.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			stream, err := conn.Subscribe(Query{Bool: And(Or("sedan")), Width: 4})
			if err != nil {
				t.Fatal(err)
			}

			for i := 0; i < 3; i++ {
				if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Every carBlock contains one sedan: eager and lazy modes
			// both publish each block promptly.
			total := 0
			for i := 0; i < 3; i++ {
				select {
				case d := <-stream.C:
					if d.Err != nil {
						t.Fatalf("publication %d rejected: %v", i, d.Err)
					}
					total += len(d.Objects)
				case <-time.After(10 * time.Second):
					t.Fatalf("timed out waiting for publication %d", i)
				}
			}
			if total != 3 {
				t.Fatalf("verified results %d, want 3", total)
			}
			if err := stream.Close(); err != nil {
				t.Fatal(err)
			}

			// The same connection also answers verified one-shot
			// queries.
			res, err := conn.Query(Query{StartBlock: 0, EndBlock: 2, Bool: And(Or("sedan")), Width: 4}, false)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 3 {
				t.Fatalf("remote query results %d, want 3", len(res))
			}
		})
	}
}

// TestFacadeServeLifecycle: closing a RemoteSP detaches it from the
// node — mining no longer fans out to it and Serve works again.
func TestFacadeServeLifecycle(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewFullNode()
	sp, err := node.Serve("127.0.0.1:0", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Serve("127.0.0.1:0", SubscribeOptions{}); err == nil {
		t.Fatal("double Serve accepted")
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := node.Mine(carBlock(0), 0); err != nil {
		t.Fatalf("mining after Close failed: %v", err)
	}
	sp2, err := node.Serve("127.0.0.1:0", SubscribeOptions{})
	if err != nil {
		t.Fatalf("re-Serve after Close failed: %v", err)
	}
	defer sp2.Close()
}

// TestFacadeProofStats checks that the shared engine is really shared:
// time-window, batched, and subscription traffic all land in one
// stats snapshot, and repeated queries produce cache hits.
func TestFacadeProofStats(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewFullNode()
	if _, err := node.Subscribe(Query{Bool: And(Or("sedan"), Or("tesla")), Width: 4}, SubscribeOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	afterSubs := sys.ProofStats()
	if afterSubs.Proofs == 0 {
		t.Fatalf("subscription processing did not reach the shared engine: %+v", afterSubs)
	}

	q := Query{StartBlock: 0, EndBlock: 2, Bool: And(Or("sedan")), Width: 4}
	if _, err := node.TimeWindow(q); err != nil {
		t.Fatal(err)
	}
	if _, err := node.TimeWindow(q); err != nil {
		t.Fatal(err)
	}
	if _, err := node.TimeWindowBatched(q); err != nil {
		t.Fatal(err)
	}
	st := sys.ProofStats()
	if st.CacheHits == 0 {
		t.Errorf("repeated window produced no cache hits: %+v", st)
	}
	if st.CacheMisses <= afterSubs.CacheMisses && st.CacheHits <= afterSubs.CacheHits {
		t.Errorf("time-window traffic did not reach the shared engine: %+v vs %+v", st, afterSubs)
	}
}

func TestFacadeOpenFullNode(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	dir := t.TempDir()
	node, err := sys.OpenFullNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh node over the same directory serves verifiable queries
	// immediately — the paper's SP restarting without a rebuild.
	re, err := sys.OpenFullNode(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Height() != 3 {
		t.Fatalf("reopened height %d, want 3", re.Height())
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(re.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 2, Bool: And(Or("sedan")), Width: 4}
	vo, err := re.TimeWindow(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := client.Verify(q, vo)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results %d, want 3", len(results))
	}
	// Mining continues the persisted chain through the same commit
	// pipeline.
	if _, _, err := re.Mine(carBlock(3), 3); err != nil {
		t.Fatal(err)
	}
	if re.Height() != 4 {
		t.Fatalf("post-reopen height %d, want 4", re.Height())
	}
}
