package vchain

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestFacadeServeGateway: the public ServeGateway surface works end to
// end on both node shapes — a tenant-keyed JSON query answers with
// parts and VO bytes, and /metrics scrapes.
func TestFacadeServeGateway(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)

	run := func(t *testing.T, h *GatewayHandle) {
		body, _ := json.Marshal(map[string]any{
			"startBlock": 0, "endBlock": 2,
			"keywords": [][]string{{"sedan"}},
		})
		req, err := http.NewRequest("POST", "http://"+h.Addr()+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", "k-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
		var qr struct {
			Results []json.RawMessage `json:"results"`
			Parts   []struct {
				VO string `json:"vo"`
			} `json:"parts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Parts) == 0 || qr.Parts[0].VO == "" {
			t.Fatalf("answer carries no VO bytes: %+v", qr)
		}
		if len(qr.Results) == 0 {
			t.Fatal("no results for the sedan query")
		}

		mresp, err := http.Get("http://" + h.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(mresp.Body)
		if !strings.Contains(buf.String(), "vchain_gateway_requests_total") {
			t.Fatal("/metrics missing the request counter family")
		}
	}

	t.Run("full", func(t *testing.T) {
		node := sys.NewFullNode()
		for i := 0; i < 3; i++ {
			if _, _, err := node.Mine(carBlock(i), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		h, err := node.ServeGateway("127.0.0.1:0", GatewayConfig{
			Tenants: []GatewayTenant{{Name: "test", Key: "k-test"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		run(t, h)
	})

	t.Run("sharded", func(t *testing.T) {
		node := sys.NewShardedNode(2)
		defer node.Close()
		for i := 0; i < 4; i++ {
			if _, err := node.Mine(carBlock(i), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		h, err := node.ServeGateway("127.0.0.1:0", GatewayConfig{
			Tenants: []GatewayTenant{{Name: "test", Key: "k-test"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		run(t, h)
	})
}
