// Package vchain is a Go implementation of vChain (Xu, Zhang, Xu;
// SIGMOD 2019): verifiable Boolean range queries over blockchain
// databases.
//
// A vChain deployment has three roles sharing one System configuration:
//
//   - a Miner (full node) that embeds an accumulator-based
//     authenticated data structure into every block it appends;
//   - a service provider (SP, also a full node) that answers
//     time-window and subscription queries, returning results together
//     with a verification object (VO);
//   - a LightClient that stores block headers only and uses VOs to
//     verify both the soundness and the completeness of every result
//     set, without trusting the SP.
//
// Quickstart:
//
//	sys, _ := vchain.NewSystem(vchain.Config{})
//	node := sys.NewFullNode()
//	node.Mine([]vchain.Object{{ID: 1, TS: 1, V: []int64{42}, W: []string{"sedan"}}}, 1)
//
//	client := sys.NewLightClient()
//	client.SyncHeaders(node.Headers())
//
//	q := vchain.Query{EndBlock: 0, Bool: vchain.And(vchain.Or("sedan"))}
//	vo, _ := node.TimeWindow(q)
//	results, err := client.Verify(q, vo) // err == nil certifies integrity
//	_ = results
package vchain

import (
	"fmt"
	"time"

	"github.com/vchain-go/vchain/internal/accumulator"
	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/crypto/pairing"
	"github.com/vchain-go/vchain/internal/proofs"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/shard"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// Re-exported data model. Object is a temporal object ⟨t, V, W⟩; Query
// is a Boolean range query (§3 of the paper).
type (
	// Object is a temporal data object.
	Object = chain.Object
	// ObjectID identifies an object.
	ObjectID = chain.ObjectID
	// Header is a block header (what light clients store).
	Header = chain.Header
	// Block is a full block.
	Block = chain.Block
	// Query is a Boolean range query.
	Query = core.Query
	// RangeCond is a numeric range predicate.
	RangeCond = core.RangeCond
	// Clause is an OR-set of a CNF condition.
	Clause = core.Clause
	// CNF is a monotone Boolean function in conjunctive normal form.
	CNF = core.CNF
	// VO is a verification object.
	VO = core.VO
	// WindowPart is one shard's share of a time-window answer: a VO
	// covering a contiguous sub-span of the window. A sharded SP
	// returns parts; LightClient.VerifyParts settles their union in
	// one pairing batch.
	WindowPart = core.WindowPart
	// Gap is a contiguous sub-window a degraded answer could not
	// prove (its owning shard was down).
	Gap = core.Gap
	// DegradedResult is a verified partial answer: objects and parts
	// for the provable sub-windows plus the gaps, together tiling the
	// query window (LightClient.VerifyDegraded enforces exactly that).
	DegradedResult = core.DegradedResult
	// ShardStat is one shard's operational snapshot: health state,
	// proof counters, failure/restart/breaker-trip totals.
	ShardStat = shard.Stats
	// ShardHealth is a shard's health state (ShardHealthy /
	// ShardDegraded / ShardQuarantined).
	ShardHealth = shard.Health
	// ShardRecovery reports a sharded store's reopen outcome.
	ShardRecovery = shard.RecoveryReport
	// ShardReport is one shard's recovery outcome within a
	// ShardRecovery.
	ShardReport = shard.ShardReport
	// Publication is a subscription delivery.
	Publication = subscribe.Publication
	// RemoteStream is a remote subscription's verified delivery
	// stream (SPClient.Subscribe).
	RemoteStream = service.Subscription
	// Delivery is one item of a RemoteStream: the pushed publication
	// plus its local verification outcome.
	Delivery = service.Delivery
	// IndexMode selects the ADS indexes (IndexNone / IndexIntra /
	// IndexBoth).
	IndexMode = core.IndexMode
	// ProofStats is a snapshot of the shared proof engine's counters
	// (proofs computed, cache hits/misses, aggregation groups).
	ProofStats = proofs.Stats
)

// Index modes (§5 basic, §6.1 intra-block, §6.2 inter-block). The zero
// value of Config.Index means "default" (IndexBoth); use IndexNone to
// explicitly disable all indexes.
const (
	// IndexNone disables both indexes (the basic scheme of §5). It is
	// a config-only sentinel: Config maps it to the internal nil mode.
	IndexNone IndexMode = -1
	// IndexNil is the internal nil mode.
	//
	// Deprecated: as a Config.Index value it is indistinguishable from
	// "unset" and defaults to IndexBoth; use IndexNone instead.
	IndexNil   = core.ModeNil
	IndexIntra = core.ModeIntra
	IndexBoth  = core.ModeBoth
)

// Or builds a disjunctive clause of keywords: Or("benz", "bmw") is
// ("Benz" ∨ "BMW").
func Or(keywords ...string) Clause { return core.KeywordClause(keywords...) }

// And conjoins clauses into a CNF: And(Or("sedan"), Or("benz", "bmw"))
// is "Sedan" ∧ ("Benz" ∨ "BMW").
func And(clauses ...Clause) CNF { return CNF(clauses) }

// Verification errors, re-exported for errors.Is checks.
var (
	// ErrSoundness marks tampered or non-matching results.
	ErrSoundness = core.ErrSoundness
	// ErrCompleteness marks omitted results or uncovered windows.
	ErrCompleteness = core.ErrCompleteness
	// ErrDegraded accompanies a verified DegradedResult whose window
	// has gaps: the answer is cryptographically sound but incomplete,
	// and the caller must decide whether a partial window will do.
	ErrDegraded = core.ErrDegraded
	// ErrShardUnavailable marks a strict query that touched a
	// quarantined shard (degraded reads turn it into a Gap instead).
	ErrShardUnavailable = shard.ErrShardUnavailable
)

// Shard health states (ShardedNode.ShardStats, ShardedNode.Health).
const (
	// ShardHealthy is a shard operating normally.
	ShardHealthy = shard.Healthy
	// ShardDegraded is a shard with recent failures below the breaker
	// threshold; it still serves but is one bad streak from
	// quarantine.
	ShardDegraded = shard.Degraded
	// ShardQuarantined is a shard whose circuit breaker tripped: it
	// rejects work until the supervisor restarts it from its log.
	ShardQuarantined = shard.Quarantined
)

// Config selects the cryptographic and indexing configuration shared by
// all roles of a deployment.
type Config struct {
	// Preset names the pairing parameters: "toy" (fast, insecure —
	// tests only), "default" (≈80-bit classic setting), or
	// "conservative". Empty means "default".
	Preset string
	// Accumulator picks the construction: "acc1" (q-SDH, §5.2.1) or
	// "acc2" (q-DHE with aggregation, §5.2.2). Empty means "acc2".
	Accumulator string
	// Index selects the ADS indexes. The zero value means IndexBoth;
	// use IndexNone to explicitly disable all indexes.
	Index IndexMode
	// SkipListSize is ℓ, the number of inter-block skips (jumps 4, 8,
	// …, 2^(ℓ+1)). Default 3. Ignored unless Index == IndexBoth.
	SkipListSize int
	// BitWidth is the numeric attribute width. Default 16.
	BitWidth int
	// Capacity bounds accumulable multisets: for acc1 the maximum
	// multiset cardinality, for acc2 the element-domain bound q.
	// Default 4096.
	Capacity int
	// Difficulty is the proof-of-work difficulty in leading zero bits.
	// Default 8.
	Difficulty uint8
	// SPWorkers is the SP's proof-computation worker count (the paper's
	// SP runs 24 hyper-threads). Default 1 (inline).
	SPWorkers int
	// VerifyWorkers bounds the light client's batched verification
	// flush. 0 means all cores (GOMAXPROCS); 1 keeps verification on
	// the calling goroutine.
	VerifyWorkers int
	// ProofCacheSize bounds the shared proof engine's LRU memoization
	// cache: repeated (multiset, clause) disjointness proofs across
	// queries, subscriptions, and blocks are served from it. 0 means
	// the engine default (4096 entries); negative disables caching.
	ProofCacheSize int
	// ShardFailureThreshold is the per-shard circuit breaker: that many
	// consecutive backend failures quarantine the shard. 0 means the
	// shard default (3); negative disables the breaker.
	ShardFailureThreshold int
	// ShardBreakerCooldown is how long a quarantined shard waits before
	// the supervisor attempts a restart. 0 means the shard default (5s).
	ShardBreakerCooldown time.Duration
	// ADSCacheBlocks bounds a durable node's decoded-ADS cache to that
	// many blocks (split across the shards of a sharded node), so RAM
	// stays flat as the chain grows: blocks beyond the budget stay on
	// disk and page in on demand, each fetch re-verified against its
	// header. 0 leaves the cache unbounded — everything paged in stays
	// resident, matching the pre-paging footprint once warm. In-memory
	// nodes ignore it (their decoded set is the only copy).
	ADSCacheBlocks int
	// Seed, when non-empty, derives the accumulator trapdoor
	// deterministically (reproducible benchmarks and tests only).
	Seed []byte
	// Encoder supplies the acc2 element encoder; nil means a
	// HashEncoder over the capacity domain.
	Encoder accumulator.ElementEncoder
}

func (c Config) withDefaults() Config {
	if c.Preset == "" {
		c.Preset = "default"
	}
	if c.Accumulator == "" {
		c.Accumulator = "acc2"
	}
	// The zero value means "unset": default to both indexes. An
	// explicit IndexNone maps to the internal nil mode. (Previously a
	// set SkipListSize silently left Index at the nil zero value,
	// disabling all indexes.)
	if c.Index == 0 {
		c.Index = IndexBoth
	} else if c.Index == IndexNone {
		c.Index = core.ModeNil
	}
	if c.SkipListSize == 0 {
		c.SkipListSize = 3
	}
	if c.BitWidth == 0 {
		c.BitWidth = 16
	}
	if c.Capacity == 0 {
		c.Capacity = 4096
	}
	if c.Difficulty == 0 {
		c.Difficulty = 8
	}
	return c
}

// System bundles the shared cryptographic state of one deployment. All
// nodes and clients of the same chain must be created from the same
// System (they share the accumulator public key).
//
// The System also owns the deployment's proof engine: one concurrent,
// memoizing disjointness-proof subsystem shared by the time-window SP
// paths, the batched path, and the subscription engine, so proofs are
// computed once and reused across all of them.
type System struct {
	cfg    Config
	acc    accumulator.Accumulator
	proofs *proofs.Engine
}

// NewSystem validates the configuration and runs the accumulator key
// generation.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	var pr *pairing.Params
	switch cfg.Preset {
	case "toy", "default", "conservative":
		pr = pairing.ByName(cfg.Preset)
	default:
		return nil, fmt.Errorf("vchain: unknown preset %q", cfg.Preset)
	}
	var acc accumulator.Accumulator
	var err error
	switch cfg.Accumulator {
	case "acc1":
		if len(cfg.Seed) > 0 {
			acc = accumulator.KeyGenCon1Deterministic(pr, cfg.Capacity, cfg.Seed)
		} else {
			acc, err = accumulator.KeyGenCon1(pr, cfg.Capacity)
		}
	case "acc2":
		enc := cfg.Encoder
		if enc == nil {
			enc = accumulator.HashEncoder{Q: cfg.Capacity}
		}
		if len(cfg.Seed) > 0 {
			acc = accumulator.KeyGenCon2Deterministic(pr, cfg.Capacity, enc, cfg.Seed)
		} else {
			acc, err = accumulator.KeyGenCon2(pr, cfg.Capacity, enc)
		}
	default:
		return nil, fmt.Errorf("vchain: unknown accumulator %q (want acc1 or acc2)", cfg.Accumulator)
	}
	if err != nil {
		return nil, err
	}
	eng := proofs.New(acc, proofs.Options{Workers: cfg.SPWorkers, CacheSize: cfg.ProofCacheSize})
	return &System{cfg: cfg, acc: acc, proofs: eng}, nil
}

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Accumulator exposes the shared accumulator (public part).
func (s *System) Accumulator() accumulator.Accumulator { return s.acc }

// ProofStats returns a snapshot of the shared proof engine's counters:
// proofs computed, cache hits/misses, evictions, and aggregation
// groups across every SP path of this deployment.
func (s *System) ProofStats() ProofStats { return s.proofs.Stats() }
