package vchain

import (
	"log/slog"
	"time"

	"github.com/vchain-go/vchain/internal/gateway"
	"github.com/vchain-go/vchain/internal/service"
)

// GatewayTenant provisions one API-key principal of the HTTP gateway.
type GatewayTenant = gateway.Tenant

// LoadGatewayTenants parses a tenant provisioning file
// ("name:key[:rate[:burst]]" per line, '#' comments).
func LoadGatewayTenants(path string) ([]GatewayTenant, error) {
	return gateway.LoadTenants(path)
}

// GatewayConfig tunes a node's HTTP front door: admission control
// (tenants, token buckets, inflight cap), timeouts, and logging. The
// zero value serves an open, unlimited-rate gateway.
type GatewayConfig struct {
	// Tenants are the provisioned API-key principals; empty means the
	// gateway is open (anonymous tenant).
	Tenants []GatewayTenant
	// TenantRate / TenantBurst default the per-tenant token bucket
	// (0 rate = unlimited).
	TenantRate  float64
	TenantBurst int
	// GlobalRate / GlobalBurst cap the whole gateway.
	GlobalRate  float64
	GlobalBurst int
	// MaxInflight caps concurrently processed requests (0 = default
	// 64, negative = uncapped); excess load sheds with 429.
	MaxInflight int
	// QueryTimeout bounds one query's proof walk (0 = 30s).
	QueryTimeout time.Duration
	// WriteTimeout disconnects clients that stop draining responses
	// (0 = the wire layer's frame timeout).
	WriteTimeout time.Duration
	// Logger receives structured request logs; nil disables them.
	Logger *slog.Logger
}

// GatewayHandle is a running HTTP gateway endpoint.
type GatewayHandle struct {
	gw   *gateway.Gateway
	addr string
}

// Addr returns the bound listen address.
func (h *GatewayHandle) Addr() string { return h.addr }

// Close stops the gateway and its open connections (the node keeps
// running; any gob endpoint is unaffected).
func (h *GatewayHandle) Close() error { return h.gw.Close() }

// serveGateway is the shared implementation behind both node types.
func serveGateway(node service.Chain, addr string, cfg GatewayConfig, counters map[string]func() int64) (*GatewayHandle, error) {
	gw, err := gateway.New(node, gateway.Config{
		Tenants:         cfg.Tenants,
		TenantRate:      cfg.TenantRate,
		TenantBurst:     cfg.TenantBurst,
		GlobalRate:      cfg.GlobalRate,
		GlobalBurst:     cfg.GlobalBurst,
		MaxInflight:     cfg.MaxInflight,
		QueryTimeout:    cfg.QueryTimeout,
		WriteTimeout:    cfg.WriteTimeout,
		Logger:          cfg.Logger,
		ServiceCounters: counters,
	})
	if err != nil {
		return nil, err
	}
	bound, err := gw.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &GatewayHandle{gw: gw, addr: bound}, nil
}

// ServeGateway exposes this node over HTTP/JSON at addr
// ("127.0.0.1:0" picks a port): authenticated tenants run verifiable
// time-window queries (each answer part carries its canonical VO
// bytes for external verification), and scrapers read Prometheus-style
// metrics on /metrics. A gateway runs alongside any gob endpoint
// (Serve); the two share the node and its proof engine. The exported
// vchain_service_evictions_total counter tracks the gob endpoint's
// slow-consumer evictions when one is attached.
func (n *FullNode) ServeGateway(addr string, cfg GatewayConfig) (*GatewayHandle, error) {
	counters := map[string]func() int64{
		"evictions": func() int64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.srv == nil {
				return 0
			}
			return int64(n.srv.Evictions())
		},
	}
	return serveGateway(n.node, addr, cfg, counters)
}

// ServeGateway exposes the sharded node over HTTP/JSON; see
// FullNode.ServeGateway. Per-shard health, failure, and restart
// counters additionally surface as vchain_shard_* metric families.
func (n *ShardedNode) ServeGateway(addr string, cfg GatewayConfig) (*GatewayHandle, error) {
	counters := map[string]func() int64{
		"evictions": func() int64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.srv == nil {
				return 0
			}
			return int64(n.srv.Evictions())
		},
	}
	return serveGateway(n.node, addr, cfg, counters)
}
