package vchain_test

import (
	"errors"
	"fmt"

	vchain "github.com/vchain-go/vchain"
)

// Example shows the complete verifiable-query flow: mine, sync headers,
// query, verify.
func Example() {
	sys, err := vchain.NewSystem(vchain.Config{
		Preset:   "toy", // never use "toy" outside tests and docs
		BitWidth: 8,
		Capacity: 512,
		Seed:     []byte("doc-example"),
	})
	if err != nil {
		panic(err)
	}

	node := sys.NewFullNode()
	node.Mine([]vchain.Object{
		{ID: 1, TS: 0, V: []int64{42}, W: []string{"sedan", "benz"}},
		{ID: 2, TS: 0, V: []int64{99}, W: []string{"van", "audi"}},
	}, 0)

	client := sys.NewLightClient()
	client.SyncHeaders(node.Headers())

	q := vchain.Query{
		StartBlock: 0, EndBlock: 0,
		Range: &vchain.RangeCond{Lo: []int64{0}, Hi: []int64{50}},
		Bool:  vchain.And(vchain.Or("sedan")),
		Width: 8,
	}
	vo, _ := node.TimeWindow(q)
	results, err := client.Verify(q, vo)
	fmt.Println(len(results), err)
	// Output: 1 <nil>
}

// ExampleLightClient_Verify demonstrates that a cheating SP is caught:
// dropping a block from the VO yields a completeness violation.
func ExampleLightClient_Verify() {
	sys, _ := vchain.NewSystem(vchain.Config{
		Preset: "toy", BitWidth: 8, Capacity: 512, Seed: []byte("doc-cheat"),
	})
	node := sys.NewFullNode()
	for i := 0; i < 2; i++ {
		node.Mine([]vchain.Object{
			{ID: vchain.ObjectID(i + 1), TS: int64(i), V: []int64{7}, W: []string{"sedan"}},
		}, int64(i))
	}
	client := sys.NewLightClient()
	client.SyncHeaders(node.Headers())

	q := vchain.Query{StartBlock: 0, EndBlock: 1, Bool: vchain.And(vchain.Or("sedan")), Width: 8}
	vo, _ := node.TimeWindow(q)
	vo.Blocks = vo.Blocks[:1] // the "SP" hides the older block

	_, err := client.Verify(q, vo)
	fmt.Println(errors.Is(err, vchain.ErrCompleteness))
	// Output: true
}

// ExampleFullNode_Subscribe registers a continuous query and verifies
// its publications.
func ExampleFullNode_Subscribe() {
	sys, _ := vchain.NewSystem(vchain.Config{
		Preset: "toy", BitWidth: 8, Capacity: 512, Seed: []byte("doc-sub"),
	})
	node := sys.NewFullNode()
	q := vchain.Query{Bool: vchain.And(vchain.Or("benz", "bmw")), Width: 8}
	node.Subscribe(q, vchain.SubscribeOptions{UseIPTree: true, Dims: 1})

	_, pubs, _ := node.Mine([]vchain.Object{
		{ID: 1, TS: 0, V: []int64{10}, W: []string{"sedan", "benz"}},
	}, 0)

	client := sys.NewLightClient()
	client.SyncHeaders(node.Headers())
	objs, err := client.VerifyPublication(q, &pubs[0])
	fmt.Println(len(objs), err)
	// Output: 1 <nil>
}
