package vchain

import (
	"strings"
	"testing"
)

func TestFacadeShardedEndToEnd(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewShardedNode(2)
	defer node.Close()
	for i := 0; i < 6; i++ {
		if _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if node.Shards() != 2 {
		t.Fatalf("shards %d", node.Shards())
	}
	client := sys.NewLightClient()
	if err := client.SyncHeaders(node.Headers()); err != nil {
		t.Fatal(err)
	}
	q := Query{StartBlock: 0, EndBlock: 5, Bool: And(Or("sedan")), Width: 4}
	parts, err := node.TimeWindow(q)
	if err != nil {
		t.Fatal(err)
	}
	results, err := client.VerifyParts(q, parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results %d, want 6", len(results))
	}

	// Batched variant.
	parts, err = node.TimeWindowBatched(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.VerifyParts(q, parts); err != nil {
		t.Fatal(err)
	}

	// A tampered part must fail, and a dropped part is incompleteness.
	if len(parts) >= 2 {
		if _, err := client.VerifyParts(q, parts[1:]); err == nil {
			t.Fatal("dropped part accepted")
		}
	}
	if st := node.ProofStats(); st.Proofs == 0 {
		t.Error("aggregated proof stats empty")
	}
	if ss := node.ShardStats(); len(ss) != 2 {
		t.Errorf("shard stats %d entries, want 2", len(ss))
	}
}

func TestFacadeOpenShardedNode(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	dir := t.TempDir()
	node, err := sys.OpenShardedNode(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	headers := node.Headers()
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen adopting the recorded topology (shards <= 0).
	node, err = sys.OpenShardedNode(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if node.Shards() != 2 {
		t.Fatalf("adopted %d shards, want 2", node.Shards())
	}
	rec := node.Recovery()
	if rec == nil || rec.Blocks != 4 {
		t.Fatalf("recovery %+v, want 4 blocks", rec)
	}
	if got := node.Headers(); len(got) != len(headers) {
		t.Fatalf("reopened %d headers, want %d", len(got), len(headers))
	}

	// A conflicting explicit count is rejected.
	if _, err := sys.OpenShardedNode(dir, 3); err == nil {
		t.Fatal("conflicting shard count accepted")
	} else if !strings.Contains(err.Error(), "sharded block store") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFacadeShardedServe(t *testing.T) {
	sys := testSystem(t, "acc2", IndexBoth)
	node := sys.NewShardedNode(2)
	defer node.Close()
	for i := 0; i < 4; i++ {
		if _, err := node.Mine(carBlock(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := node.Serve("127.0.0.1:0", SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if _, err := node.Serve("127.0.0.1:0", SubscribeOptions{}); err == nil {
		t.Fatal("double serve accepted")
	}

	client := sys.NewLightClient()
	cli, err := client.DialSP(sp.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	q := Query{StartBlock: 0, EndBlock: 3, Bool: And(Or("sedan")), Width: 4}
	results, err := cli.Query(q, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d, want 4", len(results))
	}
}
