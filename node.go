package vchain

import (
	"fmt"
	"sync"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/service"
	"github.com/vchain-go/vchain/internal/storage"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// FullNode is a miner and service provider over one chain: it mines
// ADS-carrying blocks, answers time-window queries with VOs, and runs
// the subscription engine.
type FullNode struct {
	sys  *System
	node *core.FullNode

	// mu guards the lazily created subscription engine, its fixed
	// options, and the attached service endpoint.
	mu         sync.Mutex
	engine     *subscribe.Engine
	engineOpts SubscribeOptions
	srv        *service.Server
}

// builder constructs the system's ADS builder configuration.
func (s *System) builder() *core.Builder {
	return &core.Builder{
		Acc:      s.acc,
		Mode:     s.cfg.Index,
		SkipSize: s.cfg.SkipListSize,
		Width:    s.cfg.BitWidth,
	}
}

// NewFullNode creates an in-memory full node (miner + SP) for this
// system: nothing survives the process. Use OpenFullNode for a node
// whose chain persists across restarts.
func (s *System) NewFullNode() *FullNode {
	node := core.NewFullNode(chain.Difficulty(s.cfg.Difficulty), s.builder())
	// Every SP derived from this node shares the deployment's proof
	// engine: repeated windows, batched queries, and subscriptions all
	// reuse one proof cache and worker pool.
	node.Proofs = s.proofs
	return &FullNode{sys: s, node: node}
}

// OpenFullNode opens (or creates) a durable full node whose blocks and
// ADS bodies live in a crash-safe segmented-log block store at dir.
// Every mined or imported block is persisted atomically at commit
// time. Reopening is index-only: the chain's headers re-validate
// immediately, while ADS bodies stay on disk and page in on first use
// (bounded by Config.ADSCacheBlocks), each fetch re-verified against
// its header — never rebuilt — so a restarted SP serves verifiable
// queries immediately without first decoding the whole chain. A torn
// tail left by a crash is truncated to the last fully committed block.
// The accumulator public key is not part of the store (it is
// deployment configuration): this System must use the key that
// produced it, or the header and page-in cross-checks will reject the
// chain. Call Close when done with the node.
func (s *System) OpenFullNode(dir string) (*FullNode, error) {
	node, err := core.OpenFullNode(chain.Difficulty(s.cfg.Difficulty), s.builder(), dir, storage.Options{},
		core.WithADSCache(s.cfg.ADSCacheBlocks))
	if err != nil {
		return nil, fmt.Errorf("vchain: opening block store: %w", err)
	}
	node.Proofs = s.proofs
	return &FullNode{sys: s, node: node}, nil
}

// Close releases the node's block store. The node — in-memory or
// durable — must not be used afterwards.
func (n *FullNode) Close() error { return n.node.Close() }

// Mine appends a block of objects with the given timestamp, returning
// the new block. Registered subscriptions are processed automatically;
// due publications are returned alongside.
func (n *FullNode) Mine(objs []Object, ts int64) (*Block, []Publication, error) {
	blk, err := n.node.MineBlock(objs, ts)
	if err != nil {
		return nil, nil, err
	}
	n.mu.Lock()
	engine, srv := n.engine, n.srv
	n.mu.Unlock()
	var pubs []Publication
	if engine != nil {
		ads, err := n.node.ADSAt(int(blk.Header.Height))
		if err != nil {
			return nil, nil, fmt.Errorf("vchain: subscriptions: %w", err)
		}
		pubs, err = engine.ProcessBlock(ads, n.node)
		if err != nil {
			return nil, nil, fmt.Errorf("vchain: subscriptions: %w", err)
		}
	}
	if srv != nil {
		// Remote subscribers ride the service server's own engine;
		// fan-out to their connections happens here, on the mining
		// path, with slow consumers evicted rather than awaited.
		if err := srv.ProcessBlock(int(blk.Header.Height)); err != nil {
			return nil, nil, fmt.Errorf("vchain: remote subscriptions: %w", err)
		}
	}
	return blk, pubs, nil
}

// Height returns the chain height.
func (n *FullNode) Height() int { return n.node.Height() }

// Headers returns all block headers (what light clients sync).
func (n *FullNode) Headers() []Header { return n.node.Store.Headers() }

// BlockAt returns a block by height.
func (n *FullNode) BlockAt(height int) (*Block, error) { return n.node.Store.BlockAt(height) }

// TimeWindow answers a time-window query, returning the VO (results
// are embedded: VO.Results()).
func (n *FullNode) TimeWindow(q Query) (*VO, error) {
	return n.node.SPWith(false, n.sys.cfg.SPWorkers).TimeWindowQuery(q)
}

// WindowByTime resolves a timestamp window [ts, te] to block heights
// (the form queries take in the paper, §3). Pair with TimeWindow:
//
//	start, end, ok := node.WindowByTime(tsStart, tsEnd)
//	q.StartBlock, q.EndBlock = start, end
func (n *FullNode) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return n.node.Store.WindowByTime(ts, te)
}

// TimeWindowBatched answers with online batch verification enabled
// (§6.3); it falls back to individual proofs when the configured
// accumulator cannot aggregate. Like TimeWindow, it honors
// Config.SPWorkers for parallel proof computation.
func (n *FullNode) TimeWindowBatched(q Query) (*VO, error) {
	return n.node.SPWith(true, n.sys.cfg.SPWorkers).TimeWindowQuery(q)
}

// SubscribeOptions configure the node's subscription engine. The
// engine is created on the first Subscribe call; every later call must
// carry equivalent options (the engine is shared across all of a
// node's subscriptions, so differing options cannot be honored and are
// rejected with an error rather than silently ignored).
type SubscribeOptions struct {
	// UseIPTree shares clause evaluation and proofs across queries
	// (§7.1).
	UseIPTree bool
	// Lazy defers mismatch proofs until results appear (§7.2).
	Lazy bool
	// LazyThreshold caps pending blocks before a forced publication
	// (0 means the engine default).
	LazyThreshold int
	// Dims is the numeric dimensionality of subscription ranges
	// (0 means 1).
	Dims int
}

// normalize maps the defaulted fields onto the engine's effective
// values so option comparison treats e.g. LazyThreshold 0 and the
// engine default as equal.
func (o SubscribeOptions) normalize() SubscribeOptions {
	if o.LazyThreshold <= 0 {
		o.LazyThreshold = subscribe.DefaultLazyThreshold
	}
	if o.Dims <= 0 {
		o.Dims = subscribe.DefaultDims
	}
	return o
}

// Subscribe registers a continuous query (its window fields are
// ignored) and returns its subscription id. The first call fixes the
// engine options; a later call with conflicting options is an error.
func (n *FullNode) Subscribe(q Query, opts SubscribeOptions) (int, error) {
	n.mu.Lock()
	if n.engine == nil {
		n.engine = subscribe.NewEngine(n.sys.acc, n.engineOptions(opts))
		n.engineOpts = opts.normalize()
	} else if got := opts.normalize(); got != n.engineOpts {
		n.mu.Unlock()
		return 0, fmt.Errorf("vchain: subscription options %+v conflict with the engine's %+v "+
			"(options are fixed by the first Subscribe call)", got, n.engineOpts)
	}
	engine := n.engine
	n.mu.Unlock()
	return engine.Register(q)
}

// engineOptions maps facade subscription options onto the internal
// engine's, wiring in the deployment's bit width and shared proof
// engine (used by both local Subscribe and Serve so the two paths
// cannot drift).
func (n *FullNode) engineOptions(opts SubscribeOptions) subscribe.Options {
	return subscribe.Options{
		UseIPTree:     opts.UseIPTree,
		Lazy:          opts.Lazy,
		LazyThreshold: opts.LazyThreshold,
		Dims:          opts.Dims,
		Width:         n.sys.cfg.BitWidth,
		Proofs:        n.sys.proofs,
	}
}

// Unsubscribe deregisters a query, returning any final pending
// publication.
func (n *FullNode) Unsubscribe(id int) *Publication {
	n.mu.Lock()
	engine := n.engine
	n.mu.Unlock()
	if engine == nil {
		return nil
	}
	return engine.Deregister(id)
}

// RemoteSP is a running TCP service endpoint for one node — monolithic
// (FullNode.Serve) or sharded (ShardedNode.Serve): header sync,
// verifiable queries, and streaming subscriptions for remote light
// clients.
type RemoteSP struct {
	srv    *service.Server
	addr   string
	detach func()
}

// Addr returns the bound listen address.
func (r *RemoteSP) Addr() string { return r.addr }

// Evictions reports connections dropped for slow consumption.
func (r *RemoteSP) Evictions() int { return r.srv.Evictions() }

// Close stops serving and disconnects every client. The node detaches
// from the endpoint: mining stops fanning out to it and Serve may be
// called again.
func (r *RemoteSP) Close() error {
	r.detach()
	return r.srv.Close()
}

// Serve exposes this node over TCP at addr ("127.0.0.1:0" picks a
// port): remote light clients can sync headers, run verifiable
// time-window queries, and register streaming subscriptions. The
// subscription options configure the server's engine (shared by all
// remote subscribers and backed by the deployment's proof engine);
// publications fan out on the mining path as blocks are appended.
// A node serves at most one endpoint at a time.
func (n *FullNode) Serve(addr string, opts SubscribeOptions) (*RemoteSP, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.srv != nil {
		return nil, fmt.Errorf("vchain: node already serving")
	}
	srv := service.NewServer(n.node, service.ServerConfig{
		Subscriptions: n.engineOptions(opts),
	})
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	detach := func() {
		n.mu.Lock()
		if n.srv == srv {
			n.srv = nil
		}
		n.mu.Unlock()
	}
	return &RemoteSP{srv: srv, addr: bound, detach: detach}, nil
}

// Internal accessors used by the service layer and benchmarks.
func (n *FullNode) Core() *core.FullNode { return n.node }
