package vchain

import (
	"fmt"

	"github.com/vchain-go/vchain/internal/chain"
	"github.com/vchain-go/vchain/internal/core"
	"github.com/vchain-go/vchain/internal/subscribe"
)

// FullNode is a miner and service provider over one chain: it mines
// ADS-carrying blocks, answers time-window queries with VOs, and runs
// the subscription engine.
type FullNode struct {
	sys    *System
	node   *core.FullNode
	engine *subscribe.Engine
}

// NewFullNode creates a full node (miner + SP) for this system.
func (s *System) NewFullNode() *FullNode {
	builder := &core.Builder{
		Acc:      s.acc,
		Mode:     s.cfg.Index,
		SkipSize: s.cfg.SkipListSize,
		Width:    s.cfg.BitWidth,
	}
	node := core.NewFullNode(chain.Difficulty(s.cfg.Difficulty), builder)
	// Every SP derived from this node shares the deployment's proof
	// engine: repeated windows, batched queries, and subscriptions all
	// reuse one proof cache and worker pool.
	node.Proofs = s.proofs
	return &FullNode{sys: s, node: node}
}

// Mine appends a block of objects with the given timestamp, returning
// the new block. Registered subscriptions are processed automatically;
// due publications are returned alongside.
func (n *FullNode) Mine(objs []Object, ts int64) (*Block, []Publication, error) {
	blk, err := n.node.MineBlock(objs, ts)
	if err != nil {
		return nil, nil, err
	}
	var pubs []Publication
	if n.engine != nil {
		pubs, err = n.engine.ProcessBlock(n.node.ADSAt(int(blk.Header.Height)), n.node)
		if err != nil {
			return nil, nil, fmt.Errorf("vchain: subscriptions: %w", err)
		}
	}
	return blk, pubs, nil
}

// Height returns the chain height.
func (n *FullNode) Height() int { return n.node.Height() }

// Headers returns all block headers (what light clients sync).
func (n *FullNode) Headers() []Header { return n.node.Store.Headers() }

// BlockAt returns a block by height.
func (n *FullNode) BlockAt(height int) (*Block, error) { return n.node.Store.BlockAt(height) }

// TimeWindow answers a time-window query, returning the VO (results
// are embedded: VO.Results()).
func (n *FullNode) TimeWindow(q Query) (*VO, error) {
	return n.node.SPWith(false, n.sys.cfg.SPWorkers).TimeWindowQuery(q)
}

// WindowByTime resolves a timestamp window [ts, te] to block heights
// (the form queries take in the paper, §3). Pair with TimeWindow:
//
//	start, end, ok := node.WindowByTime(tsStart, tsEnd)
//	q.StartBlock, q.EndBlock = start, end
func (n *FullNode) WindowByTime(ts, te int64) (start, end int, ok bool) {
	return n.node.Store.WindowByTime(ts, te)
}

// TimeWindowBatched answers with online batch verification enabled
// (§6.3); it falls back to individual proofs when the configured
// accumulator cannot aggregate. Like TimeWindow, it honors
// Config.SPWorkers for parallel proof computation.
func (n *FullNode) TimeWindowBatched(q Query) (*VO, error) {
	return n.node.SPWith(true, n.sys.cfg.SPWorkers).TimeWindowQuery(q)
}

// SubscribeOptions configure the node's subscription engine. Changing
// options after the first Subscribe call is not supported.
type SubscribeOptions struct {
	// UseIPTree shares clause evaluation and proofs across queries
	// (§7.1).
	UseIPTree bool
	// Lazy defers mismatch proofs until results appear (§7.2).
	Lazy bool
	// LazyThreshold caps pending blocks before a forced publication.
	LazyThreshold int
	// Dims is the numeric dimensionality of subscription ranges.
	Dims int
}

// Subscribe registers a continuous query (its window fields are
// ignored) and returns its subscription id.
func (n *FullNode) Subscribe(q Query, opts SubscribeOptions) (int, error) {
	if n.engine == nil {
		n.engine = subscribe.NewEngine(n.sys.acc, subscribe.Options{
			UseIPTree:     opts.UseIPTree,
			Lazy:          opts.Lazy,
			LazyThreshold: opts.LazyThreshold,
			Dims:          opts.Dims,
			Width:         n.sys.cfg.BitWidth,
			Proofs:        n.sys.proofs,
		})
	}
	return n.engine.Register(q)
}

// Unsubscribe deregisters a query, returning any final pending
// publication.
func (n *FullNode) Unsubscribe(id int) *Publication {
	if n.engine == nil {
		return nil
	}
	return n.engine.Deregister(id)
}

// Internal accessors used by the service layer and benchmarks.
func (n *FullNode) Core() *core.FullNode { return n.node }
